"""Logical representations used by Oven: transform graphs and stage graphs.

Two graph flavours appear during planning:

* a :class:`TransformGraph` -- one node per Flour transformation (i.e. per
  operator), the direct output of the Flour API; and
* a :class:`StageGraph` -- the result of Oven's stage-building and
  optimization steps, where each :class:`LogicalStage` fuses one or more
  transformations that execute in a single pass over the record.

Stages may *export* intermediate values (e.g. the token list produced inside
the Char-n-gram stage) so that other stages can consume them without
re-running the shared prefix; this is how the paper's example plan reuses the
Tokenizer between CharNgram and WordNgram.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.statistics import TransformStats
from repro.operators.base import Annotation, Operator, ValueKind

__all__ = [
    "SOURCE",
    "TransformNode",
    "TransformGraph",
    "StageInput",
    "LogicalStage",
    "StageGraph",
    "GraphValidationError",
]

#: pseudo node id denoting the raw input record
SOURCE = "$source"


class GraphValidationError(ValueError):
    """Raised by Oven's validation rules when a graph is malformed."""


class TransformNode:
    """One Flour transformation: an operator plus its upstream node ids."""

    _counter = itertools.count()

    def __init__(
        self,
        operator: Operator,
        upstream: Sequence[str],
        node_id: Optional[str] = None,
        stats: Optional[TransformStats] = None,
    ):
        self.id = node_id or f"t{next(TransformNode._counter)}"
        self.operator = operator
        self.upstream = list(upstream)
        self.stats = stats or TransformStats()
        #: filled in by schema propagation
        self.resolved_output_kind: Optional[ValueKind] = None
        self.resolved_output_size: Optional[int] = None

    @property
    def annotations(self) -> Annotation:
        return self.operator.annotations

    def is_breaker(self) -> bool:
        return self.operator.is_pipeline_breaker()

    def signature(self) -> str:
        """Identity of the transformation: operator family, config and params."""
        return self.operator.signature()

    def __repr__(self) -> str:
        return f"TransformNode({self.id}, {self.operator.name}, upstream={self.upstream})"


class TransformGraph:
    """DAG of transform nodes rooted at the raw-record source."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: Dict[str, TransformNode] = {}
        self._order: List[str] = []
        self.metadata: Dict[str, Any] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: TransformNode) -> TransformNode:
        if node.id in self.nodes:
            raise GraphValidationError(f"duplicate transform id {node.id!r}")
        for upstream in node.upstream:
            if upstream != SOURCE and upstream not in self.nodes:
                raise GraphValidationError(
                    f"transform {node.id!r} references unknown upstream {upstream!r}"
                )
        self.nodes[node.id] = node
        self._order.append(node.id)
        return node

    # -- queries -----------------------------------------------------------

    def topological_order(self) -> List[str]:
        return list(self._order)

    def consumers_of(self, node_id: str) -> List[str]:
        return [nid for nid in self._order if node_id in self.nodes[nid].upstream]

    def sink(self) -> TransformNode:
        consumed = {up for node in self.nodes.values() for up in node.upstream}
        sinks = [nid for nid in self._order if nid not in consumed]
        if len(sinks) != 1:
            raise GraphValidationError(
                f"transform graph {self.name!r} must have exactly one sink, found {sinks}"
            )
        return self.nodes[sinks[0]]

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"TransformGraph({self.name!r}, nodes={len(self.nodes)})"


@dataclass(frozen=True)
class StageInput:
    """A value a stage consumes: the output of ``transform_id`` in ``stage_id``.

    ``stage_id`` of ``None`` means the raw input record.
    """

    stage_id: Optional[str]
    transform_id: str

    @classmethod
    def source(cls) -> "StageInput":
        return cls(None, SOURCE)

    def is_source(self) -> bool:
        return self.stage_id is None and self.transform_id == SOURCE


class LogicalStage:
    """A fused group of transformations executed as a single unit."""

    _counter = itertools.count()

    def __init__(self, stage_id: Optional[str] = None):
        self.id = stage_id or f"s{next(LogicalStage._counter)}"
        #: transforms in execution order inside the stage
        self.transforms: List[TransformNode] = []
        #: where each transform's inputs come from: transform id -> list of
        #: either in-stage transform ids or StageInput references
        self.input_bindings: Dict[str, List[Any]] = {}
        #: transform ids whose outputs must be visible outside the stage
        self.exports: List[str] = []
        #: labels filled by the output validation step
        self.is_sparse: bool = False
        self.is_vectorizable: bool = False
        self.max_vector_size: int = 0
        self.output_kind: Optional[ValueKind] = None

    # -- content -----------------------------------------------------------

    def add_transform(self, node: TransformNode, bindings: List[Any]) -> None:
        self.transforms.append(node)
        self.input_bindings[node.id] = bindings

    def transform_ids(self) -> List[str]:
        return [t.id for t in self.transforms]

    def contains(self, transform_id: str) -> bool:
        return any(t.id == transform_id for t in self.transforms)

    def final_transform(self) -> TransformNode:
        if not self.transforms:
            raise GraphValidationError(f"stage {self.id} is empty")
        return self.transforms[-1]

    def external_inputs(self) -> List[StageInput]:
        """Stage inputs referencing values produced outside this stage."""
        externals: List[StageInput] = []
        for bindings in self.input_bindings.values():
            for binding in bindings:
                if isinstance(binding, StageInput) and binding not in externals:
                    externals.append(binding)
        return externals

    def upstream_stage_ids(self) -> List[str]:
        ids: List[str] = []
        for binding in self.external_inputs():
            if binding.stage_id is not None and binding.stage_id not in ids:
                ids.append(binding.stage_id)
        return ids

    def ensure_export(self, transform_id: str) -> None:
        if transform_id not in self.exports:
            self.exports.append(transform_id)

    # -- identity ----------------------------------------------------------

    def code_signature(self) -> str:
        """Identity of the stage's *code*: operator classes + configuration."""
        hasher = hashlib.sha256()
        for node in self.transforms:
            hasher.update(type(node.operator).__name__.encode())
            hasher.update(repr(node.operator._config()).encode())
        hasher.update(repr([repr(b) for b in self.external_inputs()]).encode())
        return hasher.hexdigest()

    def full_signature(self) -> str:
        """Identity of code *and* parameters (used for stage sharing)."""
        hasher = hashlib.sha256()
        for node in self.transforms:
            hasher.update(node.signature().encode())
        hasher.update(repr(len(self.external_inputs())).encode())
        hasher.update(repr(self.exports_positions()).encode())
        return hasher.hexdigest()

    def exports_positions(self) -> List[int]:
        """Positions (indices into transforms) of exported transforms."""
        positions = []
        ids = self.transform_ids()
        for export in self.exports:
            if export in ids:
                positions.append(ids.index(export))
        return positions

    def memory_bytes(self) -> int:
        return sum(t.operator.memory_bytes() for t in self.transforms)

    def __repr__(self) -> str:
        ops = "+".join(t.operator.name for t in self.transforms)
        return f"LogicalStage({self.id}, [{ops}])"


class StageGraph:
    """DAG of logical stages; the output of Oven's optimizer."""

    def __init__(self, name: str):
        self.name = name
        self.stages: Dict[str, LogicalStage] = {}
        self._order: List[str] = []
        self.metadata: Dict[str, Any] = {}

    def add_stage(self, stage: LogicalStage) -> LogicalStage:
        if stage.id in self.stages:
            raise GraphValidationError(f"duplicate stage id {stage.id!r}")
        self.stages[stage.id] = stage
        self._order.append(stage.id)
        return stage

    def remove_stage(self, stage_id: str) -> None:
        self.stages.pop(stage_id, None)
        if stage_id in self._order:
            self._order.remove(stage_id)

    def topological_order(self) -> List[str]:
        """Stages ordered so every stage appears after all of its upstreams."""
        remaining = set(self._order)
        resolved: List[str] = []
        while remaining:
            progressed = False
            for stage_id in self._order:
                if stage_id not in remaining:
                    continue
                upstream = set(self.stages[stage_id].upstream_stage_ids())
                if upstream & remaining:
                    continue
                resolved.append(stage_id)
                remaining.remove(stage_id)
                progressed = True
            if not progressed:
                raise GraphValidationError(
                    f"stage graph {self.name!r} contains a dependency cycle"
                )
        return resolved

    def consumers_of(self, stage_id: str) -> List[str]:
        return [
            sid
            for sid in self._order
            if stage_id in self.stages[sid].upstream_stage_ids()
        ]

    def sink(self) -> LogicalStage:
        consumed = {up for stage in self.stages.values() for up in stage.upstream_stage_ids()}
        sinks = [sid for sid in self._order if sid not in consumed]
        if len(sinks) != 1:
            raise GraphValidationError(
                f"stage graph {self.name!r} must have exactly one sink, found {sinks}"
            )
        return self.stages[sinks[0]]

    def stage_of_transform(self, transform_id: str) -> Optional[LogicalStage]:
        for stage in self.stages.values():
            if stage.contains(transform_id):
                return stage
        return None

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterable[LogicalStage]:
        return iter(self.stages[sid] for sid in self._order)

    def __repr__(self) -> str:
        return f"StageGraph({self.name!r}, stages={len(self.stages)})"
