"""Oven: PRETZEL's optimizer and model-plan compiler.

Oven takes the transformation graph produced by Flour and

1. validates it (schema propagation / checking, well-formedness),
2. groups transformations into *stages* (pipelining memory-bound 1-to-1
   transformations, breaking at n-to-1 "pipeline breakers"),
3. optimizes the stage graph (common sub-expression elimination, stage
   merging and inlining, pushing linear models through ``Concat``, removal of
   unnecessary stages), and
4. labels stages with schema and training statistics before the Model Plan
   Compiler maps every logical stage to an AOT-compiled physical stage.
"""

from repro.core.oven.logical import (
    LogicalStage,
    StageGraph,
    TransformGraph,
    TransformNode,
)
from repro.core.oven.optimizer import OvenOptimizer
from repro.core.oven.compiler import ModelPlanCompiler
from repro.core.oven.plan import ModelPlan, PlanStage

__all__ = [
    "TransformNode",
    "TransformGraph",
    "LogicalStage",
    "StageGraph",
    "OvenOptimizer",
    "ModelPlanCompiler",
    "ModelPlan",
    "PlanStage",
]
