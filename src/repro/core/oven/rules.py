"""Individual rewriting rules used by Oven's optimization steps.

Rules follow the classic rule-based optimizer protocol: ``apply(graph)``
inspects the graph, performs its rewrite if the matching condition holds and
returns ``True`` when the graph was modified.  Steps (see
:mod:`repro.core.oven.steps`) iterate their rules until a fix-point is
reached.  Validation rules never modify the graph; they raise
:class:`~repro.core.oven.logical.GraphValidationError` on failure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.oven.logical import (
    SOURCE,
    GraphValidationError,
    LogicalStage,
    StageGraph,
    StageInput,
    TransformGraph,
    TransformNode,
)
from repro.core.oven.rewrite_ops import MarginCombiner, PartialLinearScorer, link_name_for_model
from repro.core.statistics import TransformStats
from repro.operators.base import Annotation, OperatorKind, ValueKind
from repro.operators.featurizers import ConcatFeaturizer
from repro.operators.linear import LinearModel

__all__ = [
    "SchemaPropagationRule",
    "SchemaValidationRule",
    "GraphWellFormedRule",
    "PushLinearModelThroughConcatRule",
    "RemoveDuplicateBranchStagesRule",
    "InlineSingleTransformStageRule",
    "RemoveUnnecessaryStagesRule",
    "StageSchemaRule",
    "StageStatsRule",
    "VectorizableLabelingRule",
    "ExportConsistencyRule",
    "StageGraphWellFormedRule",
]


# ---------------------------------------------------------------------------
# InputGraphValidatorStep rules (transform graph level)
# ---------------------------------------------------------------------------


class SchemaPropagationRule:
    """Propagate output kinds and sizes from the source to the sink."""

    name = "SchemaPropagation"

    def apply(self, graph: TransformGraph) -> bool:
        changed = False
        for node_id in graph.topological_order():
            node = graph.nodes[node_id]
            kind = node.operator.output_kind
            size = node.operator.output_size()
            if size is None and isinstance(node.operator, ConcatFeaturizer):
                upstream_sizes = []
                for upstream in node.upstream:
                    if upstream == SOURCE:
                        upstream_sizes = []
                        break
                    upstream_sizes.append(graph.nodes[upstream].resolved_output_size)
                if upstream_sizes and all(s is not None for s in upstream_sizes):
                    size = int(sum(upstream_sizes))  # type: ignore[arg-type]
            if size is None and node.stats.max_vector_size:
                size = node.stats.max_vector_size
            if node.resolved_output_kind != kind or node.resolved_output_size != size:
                node.resolved_output_kind = kind
                node.resolved_output_size = size
                changed = True
        return changed


class SchemaValidationRule:
    """Check that every transformation's input schema matches its upstreams."""

    name = "SchemaValidation"

    def apply(self, graph: TransformGraph) -> bool:
        source_kind = graph.metadata.get("input_kind")
        for node_id in graph.topological_order():
            node = graph.nodes[node_id]
            expected = node.operator.input_kind
            for upstream in node.upstream:
                if upstream == SOURCE:
                    if source_kind is not None and expected != source_kind:
                        raise GraphValidationError(
                            f"transform {node.id} expects {expected.value} but the "
                            f"pipeline input is {source_kind.value}"
                        )
                    continue
                produced = graph.nodes[upstream].resolved_output_kind
                if produced is None:
                    raise GraphValidationError(
                        f"schema of {upstream!r} not resolved before validating {node.id!r}"
                    )
                if produced == expected:
                    continue
                if expected == ValueKind.VECTOR and produced == ValueKind.SCALAR:
                    continue  # a scalar is a valid 1-dimensional vector
                raise GraphValidationError(
                    f"transform {node.id} ({node.operator.name}) expects "
                    f"{expected.value} but upstream {upstream!r} produces {produced.value}"
                )
        return False


class GraphWellFormedRule:
    """Check the graph is well-formed and ends with a predictor."""

    name = "GraphWellFormed"

    def apply(self, graph: TransformGraph) -> bool:
        if not graph.nodes:
            raise GraphValidationError("empty transform graph")
        sink = graph.sink()
        if sink.operator.kind != OperatorKind.PREDICTOR and sink.resolved_output_kind not in (
            ValueKind.SCALAR,
            ValueKind.VECTOR,
            ValueKind.KEY,
        ):
            raise GraphValidationError(
                f"pipeline {graph.name!r} does not end with a predictor "
                f"(sink is {sink.operator.name})"
            )
        # Every node must be reachable from the source.
        reachable = {SOURCE}
        for node_id in graph.topological_order():
            node = graph.nodes[node_id]
            if all(upstream in reachable for upstream in node.upstream):
                reachable.add(node_id)
        unreachable = set(graph.nodes) - reachable
        if unreachable:
            raise GraphValidationError(f"unreachable transforms: {sorted(unreachable)}")
        return False


# ---------------------------------------------------------------------------
# StageGraphOptimizerStep rules (stage graph level)
# ---------------------------------------------------------------------------


def _producing_node(graph: StageGraph, binding: StageInput) -> Optional[TransformNode]:
    if binding.stage_id is None:
        return None
    stage = graph.stages.get(binding.stage_id)
    if stage is None:
        return None
    for node in stage.transforms:
        if node.id == binding.transform_id:
            return node
    return None


class PushLinearModelThroughConcatRule:
    """Replace ``Concat -> LinearModel`` with per-branch partial dot products.

    The linear model's weight vector is sliced according to the branch sizes;
    a new stage computes one partial margin per branch and combines them with
    the model's link function.  Both the Concat stage and the model stage are
    removed, so no concatenated feature buffer is ever materialized.
    """

    name = "PushLinearModelThroughConcat"

    def apply(self, graph: StageGraph) -> bool:
        for concat_stage in list(graph):
            if len(concat_stage.transforms) != 1:
                continue
            concat_node = concat_stage.transforms[0]
            if not isinstance(concat_node.operator, ConcatFeaturizer):
                continue
            consumers = graph.consumers_of(concat_stage.id)
            if len(consumers) != 1:
                continue
            model_stage = graph.stages[consumers[0]]
            if len(model_stage.transforms) != 1:
                continue
            model_node = model_stage.transforms[0]
            model = model_node.operator
            if not isinstance(model, LinearModel) or isinstance(model, PartialLinearScorer):
                continue
            if model.weights is None:
                continue
            branch_bindings = [
                binding
                for binding in concat_stage.input_bindings[concat_node.id]
                if isinstance(binding, StageInput)
            ]
            if len(branch_bindings) < 2:
                continue
            sizes: List[int] = []
            for binding in branch_bindings:
                producer = _producing_node(graph, binding)
                if producer is None:
                    sizes = []
                    break
                size = producer.resolved_output_size or producer.operator.output_size()
                if size is None:
                    sizes = []
                    break
                sizes.append(int(size))
            if not sizes or sum(sizes) != model.weights.shape[0]:
                continue

            parts = model.split(sizes)
            link = link_name_for_model(model)
            scoring_stage = LogicalStage()
            scorer_nodes: List[TransformNode] = []
            for index, (part, binding) in enumerate(zip(parts, branch_bindings)):
                scorer = PartialLinearScorer(part.weights, part.bias, branch_index=index)
                scorer_node = TransformNode(scorer, upstream=[binding.transform_id])
                scorer_node.resolved_output_kind = ValueKind.SCALAR
                scorer_node.resolved_output_size = 1
                scorer_node.stats = TransformStats(max_vector_size=1, avg_nnz=1, density=1.0)
                scoring_stage.add_transform(scorer_node, [binding])
                scorer_nodes.append(scorer_node)
            combiner = MarginCombiner(link=link, n_inputs=len(scorer_nodes))
            combiner_node = TransformNode(combiner, upstream=[n.id for n in scorer_nodes])
            combiner_node.resolved_output_kind = ValueKind.SCALAR
            combiner_node.resolved_output_size = 1
            combiner_node.stats = TransformStats(max_vector_size=1, avg_nnz=1, density=1.0)
            scoring_stage.add_transform(combiner_node, [node.id for node in scorer_nodes])
            graph.add_stage(scoring_stage)

            # Rewire consumers of the model stage to the new scoring stage.
            for consumer_id in graph.consumers_of(model_stage.id):
                consumer = graph.stages[consumer_id]
                for bindings in consumer.input_bindings.values():
                    for position, binding in enumerate(bindings):
                        if (
                            isinstance(binding, StageInput)
                            and binding.stage_id == model_stage.id
                        ):
                            bindings[position] = StageInput(scoring_stage.id, combiner_node.id)

            graph.remove_stage(concat_stage.id)
            graph.remove_stage(model_stage.id)
            graph.metadata.setdefault("rewrites", []).append(
                {"rule": self.name, "plan": graph.name, "branches": len(sizes)}
            )
            return True
        return False


class RemoveDuplicateBranchStagesRule:
    """Common sub-expression elimination across branches of one plan.

    Two stages with identical transformations (same operators, same trained
    parameters) consuming identical inputs compute identical values; the
    duplicate is removed and its consumers are rewired to the surviving stage.
    """

    name = "RemoveDuplicateBranchStages"

    def apply(self, graph: StageGraph) -> bool:
        stages = list(graph)
        for first_index, keeper in enumerate(stages):
            for duplicate in stages[first_index + 1 :]:
                if duplicate.id not in graph.stages or keeper.id not in graph.stages:
                    continue
                if keeper.full_signature() != duplicate.full_signature():
                    continue
                if keeper.external_inputs() != duplicate.external_inputs():
                    continue
                id_map = {
                    dup_node.id: keep_node.id
                    for dup_node, keep_node in zip(duplicate.transforms, keeper.transforms)
                }
                for consumer_id in graph.consumers_of(duplicate.id):
                    consumer = graph.stages[consumer_id]
                    for bindings in consumer.input_bindings.values():
                        for position, binding in enumerate(bindings):
                            if (
                                isinstance(binding, StageInput)
                                and binding.stage_id == duplicate.id
                            ):
                                mapped = id_map.get(binding.transform_id, binding.transform_id)
                                bindings[position] = StageInput(keeper.id, mapped)
                                if mapped != keeper.final_transform().id:
                                    keeper.ensure_export(mapped)
                graph.remove_stage(duplicate.id)
                graph.metadata.setdefault("rewrites", []).append(
                    {"rule": self.name, "plan": graph.name}
                )
                return True
        return False


class InlineSingleTransformStageRule:
    """Inline trivially small stages into their producer.

    A stage holding a single 1-to-1 transformation whose only input is the
    *final* value of another stage (and which is that value's only consumer)
    is appended to the producing stage: the extra stage would only add
    scheduling and buffering overhead.  Transformations whose producer value
    feeds other stages are left alone so shared featurization stages keep
    their cross-pipeline identity.
    """

    name = "InlineSingleTransformStage"

    def apply(self, graph: StageGraph) -> bool:
        for stage in list(graph):
            if len(stage.transforms) != 1:
                continue
            node = stage.transforms[0]
            if node.is_breaker():
                continue
            externals = stage.external_inputs()
            if len(externals) != 1 or externals[0].is_source():
                continue
            binding = externals[0]
            producer_stage = graph.stages.get(binding.stage_id or "")
            if producer_stage is None:
                continue
            if binding.transform_id != producer_stage.final_transform().id:
                continue
            # The producer's final value must not feed anything else.
            other_consumers = [
                sid
                for sid in graph.consumers_of(producer_stage.id)
                if sid != stage.id
                and any(
                    isinstance(b, StageInput)
                    and b.stage_id == producer_stage.id
                    and b.transform_id == binding.transform_id
                    for bindings in graph.stages[sid].input_bindings.values()
                    for b in bindings
                )
            ]
            if other_consumers:
                continue
            producer_stage.add_transform(node, [binding.transform_id])
            for consumer_id in graph.consumers_of(stage.id):
                consumer = graph.stages[consumer_id]
                for bindings in consumer.input_bindings.values():
                    for position, inner in enumerate(bindings):
                        if isinstance(inner, StageInput) and inner.stage_id == stage.id:
                            bindings[position] = StageInput(producer_stage.id, inner.transform_id)
            graph.remove_stage(stage.id)
            graph.metadata.setdefault("rewrites", []).append(
                {"rule": self.name, "plan": graph.name, "transform": node.operator.name}
            )
            return True
        return False


class RemoveUnnecessaryStagesRule:
    """Drop empty stages and stages whose output nobody consumes."""

    name = "RemoveUnnecessaryStages"

    def apply(self, graph: StageGraph) -> bool:
        if len(graph) <= 1:
            return False
        try:
            sink_id = graph.sink().id
        except GraphValidationError:
            sink_id = None
        for stage in list(graph):
            if not stage.transforms:
                graph.remove_stage(stage.id)
                return True
            if sink_id is not None and stage.id != sink_id and not graph.consumers_of(stage.id):
                graph.remove_stage(stage.id)
                graph.metadata.setdefault("rewrites", []).append(
                    {"rule": self.name, "plan": graph.name, "stage": stage.id}
                )
                return True
        return False


# ---------------------------------------------------------------------------
# OutputGraphValidatorStep rules (labelling + final checks)
# ---------------------------------------------------------------------------


class StageSchemaRule:
    """Derive each stage's output schema from its final transformation."""

    name = "StageSchema"

    def apply(self, graph: StageGraph) -> bool:
        changed = False
        for stage in graph:
            final = stage.final_transform()
            kind = final.resolved_output_kind or final.operator.output_kind
            if stage.output_kind != kind:
                stage.output_kind = kind
                changed = True
        return changed


class StageStatsRule:
    """Label stages with training statistics (max vector size, sparsity)."""

    name = "StageStats"

    def apply(self, graph: StageGraph) -> bool:
        changed = False
        for stage in graph:
            max_size = 0
            for node in stage.transforms:
                candidates = [
                    node.stats.max_vector_size,
                    node.resolved_output_size or 0,
                    node.operator.output_size() or 0,
                ]
                max_size = max(max_size, *candidates)
            final = stage.final_transform()
            sparse = final.stats.is_sparse or getattr(final.operator, "produces_sparse", False)
            if stage.max_vector_size != max_size or stage.is_sparse != sparse:
                stage.max_vector_size = max_size
                stage.is_sparse = sparse
                changed = True
        return changed


class VectorizableLabelingRule:
    """Mark dense compute-bound stages as vectorizable (SIMD-friendly)."""

    name = "VectorizableLabeling"

    def apply(self, graph: StageGraph) -> bool:
        changed = False
        for stage in graph:
            vectorizable = all(
                bool(node.annotations & Annotation.VECTORIZABLE) for node in stage.transforms
            ) and not stage.is_sparse
            if stage.is_vectorizable != vectorizable:
                stage.is_vectorizable = vectorizable
                changed = True
        return changed


class ExportConsistencyRule:
    """Ensure every cross-stage reference points at an exported (visible) value."""

    name = "ExportConsistency"

    def apply(self, graph: StageGraph) -> bool:
        changed = False
        for stage in graph:
            for binding in stage.external_inputs():
                if binding.is_source():
                    continue
                producer = graph.stages.get(binding.stage_id or "")
                if producer is None or not producer.contains(binding.transform_id):
                    raise GraphValidationError(
                        f"stage {stage.id} references missing value "
                        f"{binding.stage_id}/{binding.transform_id}"
                    )
                if (
                    binding.transform_id != producer.final_transform().id
                    and binding.transform_id not in producer.exports
                ):
                    producer.ensure_export(binding.transform_id)
                    changed = True
        return changed


class StageGraphWellFormedRule:
    """Final structural check: acyclic, single sink."""

    name = "StageGraphWellFormed"

    def apply(self, graph: StageGraph) -> bool:
        graph.topological_order()
        graph.sink()
        return False
