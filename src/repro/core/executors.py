"""Executors: long-running workers that execute physical stages.

Each executor owns a vector pool (allocated per executor to improve locality,
as in the paper) and pulls stage events from the Scheduler when free.  The
pool of executors is created once at runtime initialization so no thread is
ever spawned on the prediction path.

When the scheduler has stage-level batching enabled, a free executor pulls a
:class:`~repro.core.scheduler.StageBatch` -- queued events whose next stage
shares one physical-stage signature, possibly from different requests and
different model plans, taken straight from the scheduler's signature index
(up to the cap the configured batch sizer grants for this pull) -- and serves
the whole batch through a single vectorized
:func:`~repro.core.engines.execute_plan_stage_batch` call.  If the batched
path raises, the executor falls back to per-event scalar execution so errors
are attributed to the request that caused them and healthy requests in the
same batch still complete.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional

from repro.core.engines import (
    execute_plan_stage,
    execute_plan_stage_batch,
    record_stage_span,
)
from repro.core.materialization import SubPlanMaterializer
from repro.core.scheduler import Scheduler, StageBatch, StageEvent
from repro.core.vector_pool import VectorPool
from repro.observability import tracer

__all__ = ["Executor", "ExecutorPool"]


def _record_queue_wait(event: StageEvent) -> None:
    """Span for the time a traced event sat in a ready queue before this pull."""
    trace = event.request.trace
    if trace is None or event.enqueued_at is None:
        return
    tracer().record(
        trace.trace_id,
        "queue.wait",
        time.perf_counter() - event.enqueued_at,
        parent_span_id=trace.parent_span_id,
        attributes={"signature": event.signature, "stage_index": event.stage_index},
    )


class Executor(threading.Thread):
    """A worker thread bound to one logical core."""

    def __init__(
        self,
        executor_id: int,
        scheduler: Scheduler,
        materializer: Optional[SubPlanMaterializer] = None,
        vector_pooling: bool = True,
        pool_entries: int = 8,
        backend_policy: Optional[Any] = None,
    ):
        super().__init__(name=f"pretzel-executor-{executor_id}", daemon=True)
        self.executor_id = executor_id
        self.scheduler = scheduler
        self.materializer = materializer
        self.backend_policy = backend_policy
        self.vector_pool = VectorPool(enabled=vector_pooling, entries_per_class=pool_entries)
        self.stages_executed = 0
        self.batches_executed = 0
        self.busy_seconds = 0.0
        self._stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        batching = self.scheduler.enable_stage_batching
        while not self._stop_event.is_set() and not self.scheduler.is_shut_down:
            if batching:
                batch = self.scheduler.next_batch(self.executor_id)
                if batch is None:
                    continue
                self.execute_batch(batch)
            else:
                event = self.scheduler.next_event(self.executor_id)
                if event is None:
                    continue
                self.execute_event(event)

    def execute_event(self, event: StageEvent) -> None:
        """Run one stage event (also callable synchronously from tests)."""
        request = event.request
        stage = request.plan.stages[event.stage_index]
        trace = request.trace
        if trace is not None:
            _record_queue_wait(event)
            started = time.perf_counter()
        try:
            output = execute_plan_stage(
                stage,
                request.record,
                request.values,
                materializer=self.materializer,
                pool=self.vector_pool,
            )
        except BaseException as error:  # noqa: BLE001 - forwarded to the caller
            self.scheduler.on_stage_error(event, error)
            return
        if trace is not None:
            record_stage_span(trace, stage, time.perf_counter() - started)
        self.stages_executed += 1
        self.scheduler.on_stage_complete(event, output)

    def execute_batch(self, batch: StageBatch) -> None:
        """Run one coalesced stage batch (also callable synchronously from tests).

        A failure inside the vectorized path cannot be attributed to a single
        member, so the batch is retried event by event through the scalar
        path; only the offending request fails.
        """
        if len(batch) == 1:
            self.execute_event(batch.events[0])
            return
        items = [
            (
                event.request.plan.stages[event.stage_index],
                event.request.record,
                event.request.values,
            )
            for event in batch.events
        ]
        traced = [event for event in batch.events if event.request.trace is not None]
        for event in traced:
            _record_queue_wait(event)
        started = time.perf_counter() if traced else 0.0
        try:
            outputs = execute_plan_stage_batch(
                items,
                materializer=self.materializer,
                pool=self.vector_pool,
                backend_policy=self.backend_policy,
            )
        except BaseException:  # noqa: BLE001 - re-run members to isolate the fault
            for event in batch.events:
                self.execute_event(event)
            return
        if traced:
            # each traced member charges the whole vectorized call once, the
            # same per-record attribution the offline fig5 harness uses
            duration = time.perf_counter() - started
            for event in traced:
                record_stage_span(
                    event.request.trace,
                    event.request.plan.stages[event.stage_index],
                    duration,
                    events=len(batch),
                )
        self.stages_executed += len(batch)
        self.batches_executed += 1
        for event, output in zip(batch.events, outputs):
            self.scheduler.on_stage_complete(event, output)

    def stop(self) -> None:
        self._stop_event.set()


class ExecutorPool:
    """The fixed set of executors the batch engine schedules over."""

    def __init__(
        self,
        scheduler: Scheduler,
        num_executors: int,
        materializer: Optional[SubPlanMaterializer] = None,
        vector_pooling: bool = True,
        pool_entries: int = 8,
        backend_policy: Optional[Any] = None,
    ):
        if num_executors < 1:
            raise ValueError("need at least one executor")
        self.scheduler = scheduler
        self.executors: List[Executor] = [
            Executor(
                executor_id=index,
                scheduler=scheduler,
                materializer=materializer,
                vector_pooling=vector_pooling,
                pool_entries=pool_entries,
                backend_policy=backend_policy,
            )
            for index in range(num_executors)
        ]
        self._started = False
        self._shut_down = False

    def start(self) -> None:
        if self._started:
            return
        if self._shut_down:
            raise RuntimeError("executor pool is shut down")
        for executor in self.executors:
            executor.start()
        self._started = True

    @property
    def started(self) -> bool:
        return self._started

    def preallocate(self, sizes: List[int], entries: Optional[int] = None) -> None:
        for executor in self.executors:
            executor.vector_pool.preallocate(sizes, entries=entries)

    def shutdown(self) -> None:
        self.scheduler.shutdown()
        self._shut_down = True
        for executor in self.executors:
            executor.stop()
        if self._started:
            for executor in self.executors:
                executor.join(timeout=1.0)
        self._started = False

    def memory_bytes(self) -> int:
        return sum(executor.vector_pool.memory_bytes() for executor in self.executors)

    def __len__(self) -> int:
        return len(self.executors)
