"""Execution engines: shared stage execution plus the request-response engine.

PRETZEL serves predictions through two engines (Section 4.2.1):

* the **request-response engine** executes a single prediction inline on the
  thread handling the request -- no scheduling or context switching, which is
  the right trade-off for latency-sensitive single predictions; and
* the **batch engine** (see :mod:`repro.core.scheduler`) routes per-stage
  events through the Scheduler onto shared Executors.

Both engines share one stage-execution implementation:
:func:`execute_plan_stage_batch` layers sub-plan materialization and pooled
working memory around the physical stage call for any batch size, and
:func:`execute_plan_stage` is its batch-of-1 entry point.  The batch engine
feeds it a whole :class:`~repro.core.scheduler.StageBatch` -- stage events
coalesced across requests (and plans) because they share one physical stage,
formed in O(batch size) from the scheduler's signature-indexed ready queues
-- which executes columnar
(:class:`~repro.operators.batch.ColumnBatch`); a single event runs the
compiled scalar path, bit-identical to the seed engine.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.materialization import SubPlanMaterializer
from repro.core.oven.plan import ModelPlan, PlanStage
from repro.core.vector_pool import VectorPool
from repro.observability import tracer
from repro.observability.tracing import TraceContext

__all__ = [
    "execute_plan_stage",
    "execute_plan_stage_batch",
    "execute_plan",
    "RequestResponseEngine",
]


def execute_plan_stage(
    stage: PlanStage,
    record: Any,
    values: Dict[Tuple[str, str], Any],
    materializer: Optional[SubPlanMaterializer] = None,
    pool: Optional[VectorPool] = None,
) -> Any:
    """Execute one plan stage for one request: the scalar fast path.

    Semantically this is :func:`execute_plan_stage_batch` with a single item
    (same gather, cache protocol, pooled working buffer and scatter; the
    batch implementation's batch-of-one short circuit runs the identical
    compiled scalar stage), but the request-response engine calls this per
    stage per prediction, so the body avoids the batch path's per-call list
    machinery -- the AC pipelines' stages are only tens of microseconds and
    the wrapper overhead is measurable at fig12's scale.
    """
    physical = stage.physical
    buffer = None
    if pool is not None and physical.max_vector_size:
        # Working memory for the stage comes from the executor's pool; with
        # pooling disabled this is a fresh allocation on the data path.
        buffer = pool.acquire(physical.max_vector_size)
    try:
        externals = [
            record if upstream is None else values[(upstream, transform_id)]
            for upstream, transform_id in stage.external_refs
        ]
        outputs = None
        if materializer is not None and materializer.enabled:
            outputs = materializer.lookup(physical, externals)
        if outputs is None:
            outputs = physical.execute(externals)
            if materializer is not None and materializer.enabled:
                materializer.store(physical, externals, outputs)
        for position, key in enumerate(stage.output_keys):
            values[key] = outputs[position]
        return outputs[physical.final_position()]
    finally:
        if buffer is not None and pool is not None:
            pool.release(buffer)


def execute_plan_stage_batch(
    items: Sequence[Tuple[PlanStage, Any, Dict[Tuple[str, str], Any]]],
    materializer: Optional[SubPlanMaterializer] = None,
    pool: Optional[VectorPool] = None,
    backend_policy: Optional[Any] = None,
) -> List[Any]:
    """The engine's one stage-execution path, for any batch size >= 1.

    ``items`` holds one ``(stage, record, values)`` triple per request; every
    stage must wrap the same physical stage (same ``full_signature``) -- the
    invariant :meth:`Scheduler.next_batch` establishes.  The plan-level
    wrappers may still differ (each plan names its stages and exports its own
    keys), so externals are gathered and outputs scattered per request, while
    the stage itself runs once over the whole batch, columnar
    (:class:`~repro.operators.batch.ColumnBatch`) inside
    :meth:`~repro.core.oven.physical.PhysicalStage.execute_batch`.

    Working memory comes from the executor's pool: a single record leases the
    stage's scalar working buffer exactly as the seed engine did, a real batch
    leases ``batch x max_vector_size`` scratch that the columnar gather stacks
    external vectors into.  Records with a materialization-cache hit are
    excluded from the batched execution; misses are stored back, exactly as
    before.  Returns each request's final stage output, in ``items`` order.

    ``backend_policy`` (a :class:`~repro.core.cost_model.CostModel`, or any
    object with the same ``select``/``observe`` pair) chooses which kernel
    backend the vectorized path runs and is fed the measured wall-clock of
    the call; ``None`` -- the default -- runs the reference kernels through
    the exact pre-backend code path.
    """
    if not items:
        return []
    physical = items[0][0].physical
    buffer = None
    if pool is not None and physical.max_vector_size:
        # With pooling disabled this is a fresh allocation on the data path
        # (the behaviour the Section 5.2.1 ablation measures).
        buffer = pool.acquire(len(items) * physical.max_vector_size)
    try:
        externals_per_item: List[List[Any]] = []
        outputs_per_item: List[Optional[List[Any]]] = [None] * len(items)
        misses: List[int] = []
        for index, (stage, record, values) in enumerate(items):
            externals = [
                record if upstream is None else values[(upstream, transform_id)]
                for upstream, transform_id in stage.external_refs
            ]
            externals_per_item.append(externals)
            if materializer is not None and materializer.enabled:
                cached = materializer.lookup(stage.physical, externals)
                if cached is not None:
                    outputs_per_item[index] = cached
                    continue
            misses.append(index)
        if len(misses) == 1:
            # The compiled scalar fused path: what the seed engine ran for
            # every record, bit-identical by construction.
            batch_outputs = [physical.execute(externals_per_item[misses[0]])]
        elif misses:
            miss_externals = [externals_per_item[index] for index in misses]
            if backend_policy is None:
                batch_outputs = physical.execute_batch(miss_externals, scratch=buffer)
            else:
                backend = backend_policy.select(physical, len(misses))
                started = time.perf_counter()
                batch_outputs = physical.execute_batch(
                    miss_externals, scratch=buffer, backend=backend
                )
                backend_policy.observe(
                    physical, backend, len(misses), time.perf_counter() - started
                )
        else:
            batch_outputs = []
        for position, index in enumerate(misses):
            outputs = batch_outputs[position]
            outputs_per_item[index] = outputs
            if materializer is not None and materializer.enabled:
                stage = items[index][0]
                materializer.store(stage.physical, externals_per_item[index], outputs)
        results: List[Any] = []
        for index, (stage, _record, values) in enumerate(items):
            outputs = outputs_per_item[index]
            assert outputs is not None
            for position, key in enumerate(stage.output_keys):
                values[key] = outputs[position]
            results.append(outputs[stage.physical.final_position()])
        return results
    finally:
        if buffer is not None and pool is not None:
            pool.release(buffer)


def execute_plan(
    plan: ModelPlan,
    record: Any,
    materializer: Optional[SubPlanMaterializer] = None,
    pool: Optional[VectorPool] = None,
    trace: Optional[TraceContext] = None,
) -> Any:
    """Execute every stage of a plan inline, in topological order.

    Working memory is requested from the pool once per pipeline (not per
    stage), lazily at the first stage, exactly as the paper describes for the
    on-line phase.  When the request carries a sampled :class:`TraceContext`,
    every stage records a ``stage.execute`` span keyed by the physical
    stage's signature (the fig5 unit); untraced requests pay a single
    ``is None`` check per stage.
    """
    values: Dict[Tuple[str, str], Any] = {}
    result: Any = None
    buffer = None
    if pool is not None and plan.max_vector_size:
        buffer = pool.acquire(plan.max_vector_size)
    try:
        for stage in plan.stages:
            if trace is None:
                output = execute_plan_stage(stage, record, values, materializer, pool=None)
            else:
                started = time.perf_counter()
                output = execute_plan_stage(stage, record, values, materializer, pool=None)
                record_stage_span(trace, stage, time.perf_counter() - started)
            if stage.is_sink:
                result = output
    finally:
        if buffer is not None and pool is not None:
            pool.release(buffer)
    return result


def record_stage_span(
    trace: TraceContext,
    stage: PlanStage,
    duration: float,
    events: int = 1,
) -> None:
    """Record one ``stage.execute`` span for a traced stage execution.

    ``events`` > 1 marks a span produced by a coalesced batch execution (the
    member's share of one vectorized call); the signature attribute is what
    :func:`repro.observability.trace_breakdown` aggregates by.
    """
    physical = stage.physical
    tracer().record(
        trace.trace_id,
        "stage.execute",
        duration,
        parent_span_id=trace.parent_span_id,
        attributes={
            "signature": physical.full_signature,
            "operators": list(physical.transform_names),
            "events": events,
        },
    )


class RequestResponseEngine:
    """Inline, low-latency execution of single predictions."""

    def __init__(
        self,
        materializer: Optional[SubPlanMaterializer] = None,
        pool: Optional[VectorPool] = None,
    ):
        self.materializer = materializer
        self.pool = pool
        self.predictions = 0

    def predict(
        self, plan: ModelPlan, record: Any, trace: Optional[TraceContext] = None
    ) -> Any:
        self.predictions += 1
        return execute_plan(plan, record, self.materializer, self.pool, trace=trace)

    def timed_predict(self, plan: ModelPlan, record: Any) -> Tuple[Any, float]:
        start = time.perf_counter()
        result = self.predict(plan, record)
        return result, time.perf_counter() - start
