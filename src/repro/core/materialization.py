"""Sub-plan materialization (Section 4.3).

When a physical stage (with its parameters) is shared by several model plans,
its output for a given input can be cached and reused across plans -- the
white-box analogue of materialized views in multi-query optimization.  The
cache is the LRU byte-budgeted store hosted by the Object Store; hashing of
the stage's external inputs decides whether a result is already available.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.object_store import ObjectStore
from repro.core.oven.physical import PhysicalStage, estimate_value_bytes, hash_value
from repro.operators.base import OperatorKind

__all__ = ["SubPlanMaterializer"]


class SubPlanMaterializer:
    """Cache outputs of shared featurization stages keyed by input hash."""

    def __init__(self, object_store: ObjectStore, enabled: bool = True):
        self.object_store = object_store
        self.enabled = enabled
        #: physical stage signatures shared by >= 2 registered plans
        self._shared_signatures: Set[str] = set()

    # -- registration hooks ---------------------------------------------------

    def mark_shared(self, signature: str) -> None:
        self._shared_signatures.add(signature)

    def is_candidate(self, stage: PhysicalStage) -> bool:
        """Materialize only shared, deterministic featurization stages.

        Stages ending in a predictor (per-plan weights) are excluded: their
        outputs are never reused across plans, so caching them only wastes
        budget.
        """
        if not self.enabled:
            return False
        if stage.full_signature not in self._shared_signatures:
            return False
        return stage.operators[-1].kind == OperatorKind.FEATURIZER

    # -- cache protocol --------------------------------------------------------

    def _key(self, stage: PhysicalStage, externals: Sequence[Any]) -> Tuple[str, str]:
        return (stage.full_signature, hash_value(list(externals)))

    def lookup(self, stage: PhysicalStage, externals: Sequence[Any]) -> Optional[List[Any]]:
        if not self.is_candidate(stage):
            return None
        return self.object_store.materialization_cache.get(self._key(stage, externals))

    def store(self, stage: PhysicalStage, externals: Sequence[Any], outputs: List[Any]) -> None:
        if not self.is_candidate(stage):
            return
        nbytes = sum(estimate_value_bytes(value) for value in outputs)
        self.object_store.materialization_cache.put(self._key(stage, externals), outputs, nbytes)

    # -- stats ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        cache = self.object_store.materialization_cache
        return {
            "enabled": self.enabled,
            "shared_stages": len(self._shared_signatures),
            "entries": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "used_bytes": cache.used_bytes,
        }
