"""Batch-size policies for stage-level coalescing.

The scheduler's per-signature ready index (:class:`repro.core.scheduler.ReadyQueue`)
makes the *backlog* behind every physical-stage signature observable in O(1),
which turns the batch-size cap from a static config knob into a policy
decision.  Two policies are provided:

* :class:`FixedBatchSizer` always returns the configured
  ``max_stage_batch_size`` -- the PR 1 behaviour, and the default
  (``stage_batch_policy="fixed"``).
* :class:`AdaptiveBatchSizer` (``stage_batch_policy="adaptive"``) sizes each
  pull from what is actually waiting: it tracks a per-signature exponential
  moving average of the backlog observed at pull time and caps the batch at
  (leader + smoothed backlog), so sparse signatures get small batches (and
  small worst-case added queueing delay) while a sustained backlog pushes the
  cap toward the hard ceiling.  When
  :class:`~repro.telemetry.batching.StageBatchTelemetry` shows past batches
  for a signature filling most of their cap, the cap is doubled (still
  clamped to the ceiling) so a saturated stage ramps up quickly.

Both policies are deterministic.  Since the scheduler's queues were sharded,
``batch_cap`` is called *outside* any queue lock (on racy depth snapshots --
a cap computed from a momentarily stale depth only changes how much of the
backlog one pull coalesces, never correctness), and ``record`` is serialized
by the telemetry's own lock.  The discrete-event simulator reuses
:class:`AdaptiveBatchSizer` verbatim with ``(model, stage)`` tuples as
signatures, so the simulated adaptive series exercises the same code path
the real engine runs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.telemetry.batching import StageBatchTelemetry

__all__ = ["FixedBatchSizer", "AdaptiveBatchSizer", "make_batch_sizer"]


class FixedBatchSizer:
    """Always allow the configured maximum batch size."""

    def __init__(self, max_batch_size: int) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size

    def batch_cap(self, signature: Hashable, backlog: int) -> int:
        return self.max_batch_size

    def forget(self, signature: Hashable) -> None:
        """No per-signature state to drop (interface parity with adaptive)."""


class AdaptiveBatchSizer:
    """Cap each pull at the smoothed per-signature backlog.

    ``batch_cap`` returns ``clamp(1 + ceil(ema_backlog), min, max)`` where the
    EMA is updated with the backlog observed at this pull.  The ``1 +``
    accounts for the leader event, which the scheduler has already popped when
    it asks for a cap.  If telemetry reports that past batches for the
    signature fill at least ``saturation`` of the tentative cap, the cap is
    doubled (clamped), letting a stage whose batches keep coming out full
    escalate to the ceiling in a few pulls.
    """

    def __init__(
        self,
        max_batch_size: int,
        telemetry: Optional[StageBatchTelemetry] = None,
        min_batch_size: int = 1,
        smoothing: float = 0.5,
        saturation: float = 0.75,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not 1 <= min_batch_size <= max_batch_size:
            raise ValueError("need 1 <= min_batch_size <= max_batch_size")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.max_batch_size = max_batch_size
        self.min_batch_size = min_batch_size
        self.smoothing = smoothing
        self.saturation = saturation
        self.telemetry = telemetry
        self._backlog_ema: Dict[Hashable, float] = {}

    def batch_cap(self, signature: Hashable, backlog: int) -> int:
        previous = self._backlog_ema.get(signature)
        if previous is None:
            ema = float(backlog)
        else:
            ema = (1.0 - self.smoothing) * previous + self.smoothing * backlog
        self._backlog_ema[signature] = ema
        cap = 1 + math.ceil(ema)
        cap = max(self.min_batch_size, min(self.max_batch_size, cap))
        if self.telemetry is not None and cap < self.max_batch_size:
            observed = self.telemetry.mean_batch_size(signature)
            if observed >= self.saturation * cap:
                cap = min(self.max_batch_size, cap * 2)
        return cap

    def smoothed_backlog(self, signature: Hashable) -> float:
        """The current EMA for ``signature`` (0.0 if never observed)."""
        return self._backlog_ema.get(signature, 0.0)

    def forget(self, signature: Hashable) -> None:
        """Drop a signature's EMA when its last plan unregisters.

        Without this, plan churn grows ``_backlog_ema`` without bound and a
        later plan re-creating the same physical stage would inherit a stale
        backlog estimate instead of starting fresh.
        """
        self._backlog_ema.pop(signature, None)


def make_batch_sizer(
    policy: str,
    max_batch_size: int,
    telemetry: Optional[StageBatchTelemetry] = None,
):
    """Build the batch sizer named by ``policy`` ("fixed" or "adaptive")."""
    if policy == "fixed":
        return FixedBatchSizer(max_batch_size)
    if policy == "adaptive":
        return AdaptiveBatchSizer(max_batch_size, telemetry=telemetry)
    raise ValueError(f"unknown stage_batch_policy {policy!r} (use 'fixed' or 'adaptive')")
