"""Batch-size policies for stage-level coalescing.

The scheduler's per-signature ready index (:class:`repro.core.scheduler.ReadyQueue`)
makes the *backlog* behind every physical-stage signature observable in O(1),
which turns the batch-size cap from a static config knob into a policy
decision.  Three policies are provided:

* :class:`FixedBatchSizer` always returns the configured
  ``max_stage_batch_size`` -- the PR 1 behaviour, and the default
  (``stage_batch_policy="fixed"``).
* :class:`AdaptiveBatchSizer` (``stage_batch_policy="adaptive"``) sizes each
  pull from what is actually waiting: it tracks a per-signature exponential
  moving average of the backlog observed at pull time and caps the batch at
  (leader + smoothed backlog), so sparse signatures get small batches (and
  small worst-case added queueing delay) while a sustained backlog pushes the
  cap toward the hard ceiling.  When
  :class:`~repro.telemetry.batching.StageBatchTelemetry` shows past batches
  for a signature filling most of their cap, the cap is doubled (still
  clamped to the ceiling) so a saturated stage ramps up quickly.
* :class:`CostModelBatchSizer` (``stage_batch_policy="cost-model"``) targets
  each signature's *measured amortization knee*: it asks the shared
  :class:`~repro.core.cost_model.CostModel` for the smallest batch class whose
  per-record time is (nearly) as good as the best observed one, and uses that
  as the per-signature ceiling.  Batching past the knee buys no amortization
  and only adds queueing delay; before the model has seen two batch classes
  for a signature the ceiling stays at the global maximum so larger classes
  remain explorable.

Every sizer funnels its answer through one shared clamp,
:func:`clamp_batch_cap`, which applies the optional *per-signature ceiling*
below the global ``max_batch_size``.  The adaptive sizer accepts such
ceilings directly (``signature_caps``), and the cost-model sizer derives them
from measurements -- both resolve the final cap through the identical code
path, so a cap can never escape ``[1, max_batch_size]`` regardless of policy.

All policies are deterministic.  Since the scheduler's queues were sharded,
``batch_cap`` is called *outside* any queue lock (on racy depth snapshots --
a cap computed from a momentarily stale depth only changes how much of the
backlog one pull coalesces, never correctness), and ``record`` is serialized
by the telemetry's own lock.  The discrete-event simulator reuses the
adaptive and cost-model sizers verbatim with ``(model, stage)`` tuples as
signatures, so the simulated series exercise the same code paths the real
engine runs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.core.cost_model import CostModel
from repro.telemetry.batching import StageBatchTelemetry

__all__ = [
    "FixedBatchSizer",
    "AdaptiveBatchSizer",
    "CostModelBatchSizer",
    "clamp_batch_cap",
    "make_batch_sizer",
]


def clamp_batch_cap(
    cap: int,
    max_batch_size: int,
    ceiling: Optional[int] = None,
    min_batch_size: int = 1,
) -> int:
    """The one clamp every sizer resolves its cap through.

    ``ceiling`` is an optional *per-signature* cap (an operator-family knee,
    or an explicitly configured limit) applied below the global
    ``max_batch_size``; the result always lands in
    ``[min_batch_size, max_batch_size]`` with the ceiling honoured in
    between.  A ceiling below ``min_batch_size`` wins (the per-signature
    limit is a correctness/latency bound, the minimum only a floor for
    sizing heuristics) but never drops below 1.
    """
    limit = max_batch_size if ceiling is None else min(max_batch_size, ceiling)
    limit = max(1, limit)
    return max(min(min_batch_size, limit), min(cap, limit))


class FixedBatchSizer:
    """Always allow the configured maximum batch size."""

    def __init__(self, max_batch_size: int) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size

    def batch_cap(self, signature: Hashable, backlog: int) -> int:
        return self.max_batch_size

    def forget(self, signature: Hashable) -> None:
        """No per-signature state to drop (interface parity with adaptive)."""


class AdaptiveBatchSizer:
    """Cap each pull at the smoothed per-signature backlog.

    ``batch_cap`` returns ``clamp(1 + ceil(ema_backlog), min, max)`` where the
    EMA is updated with the backlog observed at this pull.  The ``1 +``
    accounts for the leader event, which the scheduler has already popped when
    it asks for a cap.  If telemetry reports that past batches for the
    signature fill at least ``saturation`` of the tentative cap, the cap is
    doubled (clamped), letting a stage whose batches keep coming out full
    escalate to the ceiling in a few pulls.

    ``signature_caps`` holds optional per-signature ceilings below the global
    maximum; the saturation doubling and the backlog EMA both stay clamped
    under a signature's ceiling, through the same :func:`clamp_batch_cap`
    path the cost-model sizer uses.
    """

    def __init__(
        self,
        max_batch_size: int,
        telemetry: Optional[StageBatchTelemetry] = None,
        min_batch_size: int = 1,
        smoothing: float = 0.5,
        saturation: float = 0.75,
        signature_caps: Optional[Dict[Hashable, int]] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not 1 <= min_batch_size <= max_batch_size:
            raise ValueError("need 1 <= min_batch_size <= max_batch_size")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.max_batch_size = max_batch_size
        self.min_batch_size = min_batch_size
        self.smoothing = smoothing
        self.saturation = saturation
        self.telemetry = telemetry
        self.signature_caps: Dict[Hashable, int] = dict(signature_caps or {})
        self._backlog_ema: Dict[Hashable, float] = {}

    def set_signature_cap(self, signature: Hashable, cap: Optional[int]) -> None:
        """Install (or with ``None`` clear) a per-signature ceiling."""
        if cap is None:
            self.signature_caps.pop(signature, None)
        else:
            if cap < 1:
                raise ValueError("signature cap must be >= 1")
            self.signature_caps[signature] = cap

    def batch_cap(self, signature: Hashable, backlog: int) -> int:
        previous = self._backlog_ema.get(signature)
        if previous is None:
            ema = float(backlog)
        else:
            ema = (1.0 - self.smoothing) * previous + self.smoothing * backlog
        self._backlog_ema[signature] = ema
        ceiling = self.signature_caps.get(signature)
        cap = clamp_batch_cap(
            1 + math.ceil(ema), self.max_batch_size, ceiling, self.min_batch_size
        )
        limit = self.max_batch_size if ceiling is None else min(self.max_batch_size, ceiling)
        if self.telemetry is not None and cap < limit:
            observed = self.telemetry.mean_batch_size(signature)
            if observed >= self.saturation * cap:
                cap = clamp_batch_cap(
                    cap * 2, self.max_batch_size, ceiling, self.min_batch_size
                )
        return cap

    def smoothed_backlog(self, signature: Hashable) -> float:
        """The current EMA for ``signature`` (0.0 if never observed)."""
        return self._backlog_ema.get(signature, 0.0)

    def forget(self, signature: Hashable) -> None:
        """Drop a signature's EMA when its last plan unregisters.

        Without this, plan churn grows ``_backlog_ema`` without bound and a
        later plan re-creating the same physical stage would inherit a stale
        backlog estimate instead of starting fresh.
        """
        self._backlog_ema.pop(signature, None)
        self.signature_caps.pop(signature, None)


class CostModelBatchSizer:
    """Cap each pull at the signature's measured amortization knee.

    The :class:`~repro.core.cost_model.CostModel` keeps per-(signature,
    backend, batch-class) throughput EMAs from live executions;
    :meth:`CostModel.preferred_batch_cap` turns them into the smallest batch
    class within ``knee_tolerance`` of the best observed per-record time.
    This sizer applies that knee as the per-signature ceiling -- through the
    same :func:`clamp_batch_cap` path the adaptive sizer uses -- so stages
    with early amortization knees (GEMM-bound linear stages) stop coalescing
    past the point of diminishing returns while ensemble stages, whose knee
    sits at the ceiling, keep batching all the way up.
    """

    def __init__(
        self,
        max_batch_size: int,
        cost_model: CostModel,
        telemetry: Optional[StageBatchTelemetry] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.cost_model = cost_model
        self.telemetry = telemetry

    def batch_cap(self, signature: Hashable, backlog: int) -> int:
        ceiling = self.cost_model.preferred_batch_cap(
            signature, default=self.max_batch_size
        )
        return clamp_batch_cap(self.max_batch_size, self.max_batch_size, ceiling)

    def forget(self, signature: Hashable) -> None:
        """Drop the signature's measurements along with its plan."""
        self.cost_model.forget(signature)


def make_batch_sizer(
    policy: str,
    max_batch_size: int,
    telemetry: Optional[StageBatchTelemetry] = None,
    cost_model: Optional[CostModel] = None,
):
    """Build the batch sizer named by ``policy``.

    ``"cost-model"`` needs the runtime's shared :class:`CostModel` instance
    (the same object the executors feed observations into).
    """
    if policy == "fixed":
        return FixedBatchSizer(max_batch_size)
    if policy == "adaptive":
        return AdaptiveBatchSizer(max_batch_size, telemetry=telemetry)
    if policy == "cost-model":
        if cost_model is None:
            raise ValueError("stage_batch_policy='cost-model' requires a cost model")
        return CostModelBatchSizer(max_batch_size, cost_model, telemetry=telemetry)
    raise ValueError(
        f"unknown stage_batch_policy {policy!r} (use 'fixed', 'adaptive' or 'cost-model')"
    )
