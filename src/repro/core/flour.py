"""Flour: PRETZEL's language-integrated API for expressing pipelines.

Flour programs are DAGs of transformations chained through a fluent API
(Listing 1 of the paper) and lazily compiled: nothing executes until
``plan()`` hands the program to Oven.  A one-to-many mapping exists between
ML.Net operators and Flour transformations; :func:`flour_from_pipeline`
performs the automatic extraction of a Flour program from a trained ML.Net
pipeline that the paper's instrumented ML.Net produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import PretzelConfig
from repro.core.object_store import ObjectStore
from repro.core.oven.compiler import ModelPlanCompiler
from repro.core.oven.logical import SOURCE, TransformGraph, TransformNode
from repro.core.oven.optimizer import OvenOptimizer
from repro.core.oven.plan import ModelPlan
from repro.core.statistics import TransformStats
from repro.mlnet.pipeline import Pipeline
from repro.operators.base import Operator, ValueKind
from repro.operators.featurizers import ColumnSelector, ConcatFeaturizer

__all__ = ["FlourContext", "FlourTransform", "FlourProgram", "flour_from_pipeline"]


class FlourContext:
    """Entry point of every Flour program; wraps the Object Store.

    The context carries the Object Store so that planning a program interns
    its parameters, and exposes the source builders (currently CSV text).
    """

    def __init__(self, object_store: Optional[ObjectStore] = None, name: str = "flour-program"):
        self.object_store = object_store or ObjectStore()
        self.name = name

    @property
    def csv(self) -> "CsvSourceBuilder":
        return CsvSourceBuilder(self)

    def source(self, input_kind: ValueKind = ValueKind.ROW) -> "FlourTransform":
        """A generic source accepting records of ``input_kind``."""
        return FlourTransform(self, operator=None, upstream=[], input_kind=input_kind)


class CsvSourceBuilder:
    """Fluent builder for CSV text sources (``fContext.CSV.FromText(',')``)."""

    def __init__(self, context: FlourContext):
        self.context = context
        self.delimiter = ","

    def from_text(self, delimiter: str = ",") -> "CsvSourceBuilder":
        self.delimiter = delimiter
        return self

    def with_schema(self, fields: Sequence[str]) -> "FlourTransform":
        """Declare the input record schema and return the source transform."""
        source = FlourTransform(
            self.context, operator=None, upstream=[], input_kind=ValueKind.ROW
        )
        source.schema_fields = list(fields)
        source.delimiter = self.delimiter
        return source


class FlourTransform:
    """One node of a Flour program.

    Instances are immutable from the user's perspective: every fluent call
    returns a *new* transform referencing its upstreams, so programs form a
    DAG that ``plan()`` can analyze.
    """

    def __init__(
        self,
        context: FlourContext,
        operator: Optional[Operator],
        upstream: Sequence["FlourTransform"],
        input_kind: Optional[ValueKind] = None,
        stats: Optional[TransformStats] = None,
    ):
        self.context = context
        self.operator = operator
        self.upstream = list(upstream)
        self.input_kind = input_kind
        self.stats = stats
        self.schema_fields: List[str] = []
        self.delimiter = ","

    # -- generic chaining ---------------------------------------------------

    def apply(self, operator: Operator, stats: Optional[TransformStats] = None) -> "FlourTransform":
        """Chain an arbitrary trained operator."""
        return FlourTransform(self.context, operator, [self], stats=stats)

    def with_stats(self, stats: TransformStats) -> "FlourTransform":
        """Attach training statistics to this transformation."""
        self.stats = stats
        return self

    # -- named sugar mirroring Listing 1 -------------------------------------

    def select(self, *columns: str, textual: Optional[bool] = None) -> "FlourTransform":
        is_textual = textual if textual is not None else len(columns) == 1
        return self.apply(ColumnSelector(list(columns), textual=is_textual))

    def tokenize(self, operator: Operator) -> "FlourTransform":
        return self.apply(operator)

    def char_ngram(self, operator: Operator, stats: Optional[TransformStats] = None) -> "FlourTransform":
        return self.apply(operator, stats=stats)

    def word_ngram(self, operator: Operator, stats: Optional[TransformStats] = None) -> "FlourTransform":
        return self.apply(operator, stats=stats)

    def concat(self, *others: "FlourTransform") -> "FlourTransform":
        return FlourTransform(self.context, ConcatFeaturizer(), [self, *others])

    def classifier_binary_linear(self, operator: Operator) -> "FlourProgram":
        return FlourProgram(self.apply(operator))

    def regressor(self, operator: Operator) -> "FlourProgram":
        return FlourProgram(self.apply(operator))

    def predictor(self, operator: Operator) -> "FlourProgram":
        return FlourProgram(self.apply(operator))

    # -- graph building -------------------------------------------------------

    def _collect(self, nodes: List["FlourTransform"]) -> None:
        for upstream in self.upstream:
            if upstream not in nodes:
                upstream._collect(nodes)
        if self not in nodes:
            nodes.append(self)

    def __repr__(self) -> str:
        label = self.operator.name if self.operator is not None else "Source"
        return f"FlourTransform({label})"


class FlourProgram:
    """A complete Flour program ready to be planned."""

    def __init__(self, final: FlourTransform, name: Optional[str] = None):
        self.final = final
        self.context = final.context
        self.name = name or self.context.name

    def to_transform_graph(self) -> TransformGraph:
        """Materialize the transformation DAG Oven will optimize."""
        ordered: List[FlourTransform] = []
        self.final._collect(ordered)
        graph = TransformGraph(self.name)
        node_ids: Dict[int, str] = {}
        input_kind: Optional[ValueKind] = None
        for transform in ordered:
            if transform.operator is None:
                # Source placeholder: record its declared input kind only.
                input_kind = transform.input_kind or ValueKind.ROW
                continue
            upstream_ids: List[str] = []
            for upstream in transform.upstream:
                if upstream.operator is None:
                    upstream_ids.append(SOURCE)
                else:
                    upstream_ids.append(node_ids[id(upstream)])
            if not upstream_ids:
                upstream_ids = [SOURCE]
                if input_kind is None:
                    input_kind = transform.operator.input_kind
            node = TransformNode(transform.operator, upstream_ids, stats=transform.stats)
            graph.add_node(node)
            node_ids[id(transform)] = node.id
        if input_kind is None and ordered:
            first_real = next((t for t in ordered if t.operator is not None), None)
            if first_real is not None:
                input_kind = first_real.operator.input_kind
        graph.metadata["input_kind"] = input_kind or ValueKind.ROW
        return graph

    def plan(
        self,
        config: Optional[PretzelConfig] = None,
        optimizer: Optional[OvenOptimizer] = None,
        compiler: Optional[ModelPlanCompiler] = None,
    ) -> ModelPlan:
        """Optimize and compile the program into a model plan."""
        graph = self.to_transform_graph()
        oven = optimizer or OvenOptimizer()
        stage_graph = oven.optimize(graph)
        mpc = compiler or ModelPlanCompiler(object_store=self.context.object_store, config=config)
        return mpc.compile(stage_graph)


def flour_from_pipeline(
    pipeline: Pipeline,
    context: Optional[FlourContext] = None,
    stats: Optional[Dict[str, TransformStats]] = None,
) -> FlourProgram:
    """Automatically extract a Flour program from a trained ML.Net pipeline.

    ``stats`` optionally maps pipeline node names to training statistics; the
    instrumented training path of the workload generators provides these.
    """
    context = context or FlourContext(name=pipeline.name)
    context.name = pipeline.name
    transforms: Dict[str, FlourTransform] = {}
    source = context.source(_pipeline_input_kind(pipeline))
    final: Optional[FlourTransform] = None
    for node_name in pipeline.topological_order():
        node = pipeline.nodes[node_name]
        upstream_transforms = [
            source if upstream == Pipeline.INPUT else transforms[upstream]
            for upstream in node.inputs
        ]
        node_stats = (stats or {}).get(node_name)
        transform = FlourTransform(
            context, node.operator, upstream_transforms, stats=node_stats
        )
        transforms[node_name] = transform
        final = transform
    if final is None:
        raise ValueError(f"pipeline {pipeline.name!r} has no operators")
    sink_name = pipeline.sink()
    return FlourProgram(transforms[sink_name], name=pipeline.name)


def _pipeline_input_kind(pipeline: Pipeline) -> ValueKind:
    """Infer the raw-record kind a pipeline expects from its entry operators."""
    for node_name in pipeline.topological_order():
        node = pipeline.nodes[node_name]
        if Pipeline.INPUT in node.inputs:
            return node.operator.input_kind
    return ValueKind.ROW
