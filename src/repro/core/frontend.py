"""PRETZEL's client-facing FrontEnd.

The FrontEnd accepts prediction requests over a (simulated) HTTP hop, applies
the same *external* black-box optimizations Clipper offers -- prediction
result caching with LRU eviction and delayed batching -- and forwards work to
the Runtime.  These techniques are orthogonal to the white-box optimizations
and are measured separately in the end-to-end experiments (Figures 11 and 14).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.core.runtime import PretzelRuntime
from repro.net import NetworkModel

__all__ = ["FrontEndConfig", "PretzelFrontEnd", "FrontEndResponse"]


@dataclass
class FrontEndConfig:
    """Configuration of the ASP.Net-style front-end."""

    client_network: NetworkModel = field(default_factory=lambda: NetworkModel(round_trip_seconds=0.004))
    enable_cache: bool = False
    cache_size: int = 2048
    max_batch_size: int = 16
    max_batch_delay_seconds: float = 0.001
    frontend_overhead_bytes: int = 1024 * 1024


@dataclass
class FrontEndResponse:
    """Outputs plus the latency breakdown observed by the client."""

    plan_id: str
    outputs: List[Any]
    prediction_seconds: float
    network_seconds: float
    cache_hit: bool = False

    @property
    def end_to_end_seconds(self) -> float:
        return self.prediction_seconds + self.network_seconds


class PretzelFrontEnd:
    """Submit prediction requests to a PRETZEL runtime on behalf of clients."""

    def __init__(self, runtime: PretzelRuntime, config: Optional[FrontEndConfig] = None):
        self.runtime = runtime
        self.config = config or FrontEndConfig()
        self._cache: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._pending: Dict[str, List[Any]] = {}

    # -- caching helpers ---------------------------------------------------------

    def _cache_lookup(self, key: Hashable) -> Optional[Any]:
        if key in self._cache:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return self._cache[key]
        self.cache_misses += 1
        return None

    def _cache_store(self, key: Hashable, value: Any) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.config.cache_size:
            self._cache.popitem(last=False)

    # -- serving --------------------------------------------------------------------

    def predict(self, plan_id: str, records: Sequence[Any], use_batch_engine: bool = False) -> FrontEndResponse:
        """Serve one client request end-to-end."""
        records = list(records)
        cache_key: Optional[Hashable] = None
        if self.config.enable_cache and len(records) == 1:
            cache_key = (plan_id, repr(records[0]))
            cached = self._cache_lookup(cache_key)
            if cached is not None:
                network, _rq, _rs = self.config.client_network.round_trip(
                    {"plan": plan_id, "records": records}, {"outputs": [cached]}
                )
                return FrontEndResponse(
                    plan_id=plan_id,
                    outputs=[cached],
                    prediction_seconds=0.0,
                    network_seconds=network,
                    cache_hit=True,
                )
        start = time.perf_counter()
        if use_batch_engine or len(records) > 1:
            outputs = self.runtime.predict_batch(plan_id, records)
        else:
            outputs = [self.runtime.predict(plan_id, records[0])]
        prediction_seconds = time.perf_counter() - start
        if cache_key is not None:
            self._cache_store(cache_key, outputs[0])
        network, _rq, _rs = self.config.client_network.round_trip(
            {"plan": plan_id, "records": records}, {"outputs": outputs}
        )
        return FrontEndResponse(
            plan_id=plan_id,
            outputs=outputs,
            prediction_seconds=prediction_seconds,
            network_seconds=network,
        )

    def predict_delayed(self, plan_id: str, records: Sequence[Any]) -> FrontEndResponse:
        """Delayed batching: buffer requests and flush when the batch is full."""
        queue = self._pending.setdefault(plan_id, [])
        queue.extend(records)
        if len(queue) < self.config.max_batch_size:
            return FrontEndResponse(
                plan_id=plan_id, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        return self.flush(plan_id)

    def flush(self, plan_id: str) -> FrontEndResponse:
        queue = self._pending.get(plan_id, [])
        if not queue:
            return FrontEndResponse(
                plan_id=plan_id, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        self._pending[plan_id] = []
        response = self.predict(plan_id, queue, use_batch_engine=True)
        response.prediction_seconds += self.config.max_batch_delay_seconds
        return response

    # -- accounting ---------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.config.frontend_overhead_bytes + self.runtime.memory_bytes()

    def cache_stats(self) -> Dict[str, int]:
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
        }
