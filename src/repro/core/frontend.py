"""PRETZEL's client-facing FrontEnd.

The FrontEnd accepts prediction requests over a (simulated) HTTP hop, applies
the same *external* black-box optimizations Clipper offers -- prediction
result caching with LRU eviction and delayed batching -- and forwards work to
the Runtime.  These techniques are orthogonal to the white-box optimizations
and are measured separately in the end-to-end experiments (Figures 11 and 14).

**Delayed batching feeds the batch engine end to end.**  ``predict_delayed``
buffers records per plan; the buffer is flushed either when it fills
(``max_batch_size``) or when a deadline timer armed at the first buffered
record expires (``max_batch_delay_seconds``).  A flush submits every buffered
record through :meth:`PretzelRuntime.submit`, so the records become scheduler
events that the batch engine's stage-level coalescing batches -- across this
plan's records *and* anything else queued for the same physical stages.  The
reported ``prediction_seconds`` is the *measured* wall time from the moment
the buffer opened until the last output arrived, so a batch that fills early
is never charged the full configured delay.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.runtime import PretzelRuntime
from repro.net import NetworkModel

__all__ = ["FrontEndConfig", "PretzelFrontEnd", "FrontEndResponse", "FlushError"]

#: upper bound on how long a flush waits for its submitted requests (matches
#: the default timeout of :meth:`PretzelRuntime.predict_batch`)
_FLUSH_WAIT_SECONDS = 60.0

#: how many deadline-flush responses/errors are retained for pickup
_AUTO_FLUSH_HISTORY = 256


@dataclass
class FrontEndConfig:
    """Configuration of the ASP.Net-style front-end."""

    client_network: NetworkModel = field(default_factory=lambda: NetworkModel(round_trip_seconds=0.004))
    enable_cache: bool = False
    cache_size: int = 2048
    max_batch_size: int = 16
    max_batch_delay_seconds: float = 0.001
    frontend_overhead_bytes: int = 1024 * 1024


@dataclass
class FrontEndResponse:
    """Outputs plus the latency breakdown observed by the client."""

    plan_id: str
    outputs: List[Any]
    prediction_seconds: float
    network_seconds: float
    cache_hit: bool = False
    #: True when ``predict_delayed`` merely buffered the records -- outputs
    #: will arrive with a later flush (manual, fill-triggered, or deadline).
    buffered: bool = False

    @property
    def end_to_end_seconds(self) -> float:
        return self.prediction_seconds + self.network_seconds


class FlushError(RuntimeError):
    """A delayed-batching flush could not complete its whole buffer.

    Raised so clients never silently lose buffered records: ``outputs``
    carries what did complete (in submission order), ``submitted_records``
    how many records reached the runtime, and ``dropped_records`` how many
    produced no output (never submitted, or submitted but failed/timed out).
    The underlying failure is chained as ``__cause__``.
    """

    def __init__(
        self,
        plan_id: str,
        submitted_records: int,
        dropped_records: int,
        outputs: List[Any],
    ):
        self.plan_id = plan_id
        self.submitted_records = submitted_records
        self.dropped_records = dropped_records
        self.outputs = outputs
        super().__init__(
            f"flush of plan {plan_id!r} dropped {dropped_records} of "
            f"{len(outputs) + dropped_records} buffered records "
            f"({submitted_records} submitted)"
        )


@dataclass
class _DelayedBuffer:
    """Per-plan buffer of records awaiting a delayed-batching flush."""

    opened_at: float
    records: List[Any] = field(default_factory=list)
    #: absolute perf_counter deadline for the auto-flush (None = manual only)
    deadline: Optional[float] = None


class PretzelFrontEnd:
    """Submit prediction requests to a PRETZEL runtime on behalf of clients."""

    def __init__(self, runtime: PretzelRuntime, config: Optional[FrontEndConfig] = None):
        self.runtime = runtime
        self.config = config or FrontEndConfig()
        self._cache: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._pending: Dict[str, _DelayedBuffer] = {}
        self._pending_lock = threading.Lock()
        #: wakes the (single, lazily started) deadline-monitor thread whenever
        #: a buffer opens with an earlier deadline than it is waiting for
        self._deadline_changed = threading.Condition(self._pending_lock)
        self._monitor: Optional[threading.Thread] = None
        #: responses produced by deadline-timer flushes (clients that buffered
        #: pick their outputs up here; tests assert on it).  Bounded: only the
        #: most recent ``_AUTO_FLUSH_HISTORY`` survive, so a long-running
        #: front-end does not accumulate every batch's outputs forever.
        self.auto_flushes: "Deque[FrontEndResponse]" = deque(maxlen=_AUTO_FLUSH_HISTORY)
        #: errors raised inside deadline-timer flushes (never propagated into
        #: the timer thread's traceback machinery); bounded like auto_flushes
        self.flush_errors: "Deque[BaseException]" = deque(maxlen=_AUTO_FLUSH_HISTORY)
        #: running total of buffered records that never produced an output
        #: (see :class:`FlushError`) -- the client-visible loss counter
        self.dropped_records = 0

    # -- caching helpers ---------------------------------------------------------

    def _cache_lookup(self, key: Hashable) -> Optional[Any]:
        if key in self._cache:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return self._cache[key]
        self.cache_misses += 1
        return None

    def _cache_store(self, key: Hashable, value: Any) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.config.cache_size:
            self._cache.popitem(last=False)

    # -- serving --------------------------------------------------------------------

    def predict(self, plan_id: str, records: Sequence[Any], use_batch_engine: bool = False) -> FrontEndResponse:
        """Serve one client request end-to-end.

        An empty ``records`` sequence is answered immediately with an empty
        response (it used to fall into the single-record path and crash on
        ``records[0]``).
        """
        records = list(records)
        if not records:
            return FrontEndResponse(
                plan_id=plan_id, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        cache_key: Optional[Hashable] = None
        if self.config.enable_cache and len(records) == 1:
            cache_key = (plan_id, repr(records[0]))
            cached = self._cache_lookup(cache_key)
            if cached is not None:
                network, _rq, _rs = self.config.client_network.round_trip(
                    {"plan": plan_id, "records": records}, {"outputs": [cached]}
                )
                return FrontEndResponse(
                    plan_id=plan_id,
                    outputs=[cached],
                    prediction_seconds=0.0,
                    network_seconds=network,
                    cache_hit=True,
                )
        start = time.perf_counter()
        if use_batch_engine or len(records) > 1:
            outputs = self.runtime.predict_batch(plan_id, records)
        else:
            outputs = [self.runtime.predict(plan_id, records[0])]
        prediction_seconds = time.perf_counter() - start
        if cache_key is not None:
            self._cache_store(cache_key, outputs[0])
        network, _rq, _rs = self.config.client_network.round_trip(
            {"plan": plan_id, "records": records}, {"outputs": outputs}
        )
        return FrontEndResponse(
            plan_id=plan_id,
            outputs=outputs,
            prediction_seconds=prediction_seconds,
            network_seconds=network,
        )

    def predict_delayed(self, plan_id: str, records: Sequence[Any]) -> FrontEndResponse:
        """Delayed batching: buffer records, flush on fill or deadline expiry.

        Buffering returns a ``buffered=True`` response with no outputs.  The
        first record buffered for a plan arms a flush deadline
        (``max_batch_delay_seconds``, enforced by one shared monitor thread --
        no thread is spawned per batch window); reaching ``max_batch_size``
        flushes immediately (and returns the flush response), so a batch that
        fills early never waits out the deadline.  An empty ``records``
        sequence buffers nothing and is answered with ``buffered=False``.
        The delayed path bypasses the prediction cache: its records go
        straight to the batch engine.
        """
        records = list(records)
        if not records:
            return FrontEndResponse(
                plan_id=plan_id, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        with self._pending_lock:
            buffer = self._pending.get(plan_id)
            if buffer is None:
                opened_at = time.perf_counter()
                buffer = _DelayedBuffer(opened_at=opened_at)
                if self.config.max_batch_delay_seconds > 0:
                    buffer.deadline = opened_at + self.config.max_batch_delay_seconds
                self._pending[plan_id] = buffer
            buffer.records.extend(records)
            full = len(buffer.records) >= self.config.max_batch_size
            if full:
                # Pop while still holding the lock so the deadline monitor can
                # never steal the buffer between the fill check and the flush
                # (the filling caller must receive the outputs itself).
                del self._pending[plan_id]
            elif buffer.deadline is not None:
                self._ensure_monitor()
                self._deadline_changed.notify_all()
        if full:
            return self._flush_buffer(plan_id, buffer)
        return FrontEndResponse(
            plan_id=plan_id, outputs=[], prediction_seconds=0.0,
            network_seconds=0.0, buffered=True,
        )

    def flush(self, plan_id: str) -> FrontEndResponse:
        """Flush the plan's delayed-batching buffer through the batch engine."""
        with self._pending_lock:
            buffer = self._pending.pop(plan_id, None)
        if buffer is None or not buffer.records:
            return FrontEndResponse(
                plan_id=plan_id, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        return self._flush_buffer(plan_id, buffer)

    def _flush_buffer(self, plan_id: str, buffer: _DelayedBuffer) -> FrontEndResponse:
        # Submit record by record: stage-level coalescing inside the scheduler
        # re-forms the batch (possibly merged with other plans' events sharing
        # the same physical stages), which is the whole point of routing the
        # delayed path through the batch engine.
        #
        # The flush is atomic from the client's point of view: if a submit
        # fails mid-loop, every already-submitted request is still *waited*
        # (their events are in the scheduler and their outputs are collected,
        # not abandoned), and the failure surfaces as a FlushError that
        # carries the partial outputs and the dropped-record count instead of
        # silently vanishing records.
        requests = []
        failure: Optional[BaseException] = None
        for record in buffer.records:
            try:
                requests.append(self.runtime.submit(plan_id, record))
            except BaseException as error:  # noqa: BLE001 - reported via FlushError
                failure = error
                break
        outputs: List[Any] = []
        for request in requests:
            try:
                outputs.append(request.wait(_FLUSH_WAIT_SECONDS))
            except BaseException as error:  # noqa: BLE001 - drain every request
                if failure is None:
                    failure = error
        dropped = len(buffer.records) - len(outputs)
        if failure is not None or dropped:
            self.dropped_records += dropped
            raise FlushError(
                plan_id=plan_id,
                submitted_records=len(requests),
                dropped_records=dropped,
                outputs=outputs,
            ) from failure
        # Measured wait: buffer-open to last output, not a flat surcharge.
        prediction_seconds = time.perf_counter() - buffer.opened_at
        network, _rq, _rs = self.config.client_network.round_trip(
            {"plan": plan_id, "records": buffer.records}, {"outputs": outputs}
        )
        return FrontEndResponse(
            plan_id=plan_id,
            outputs=outputs,
            prediction_seconds=prediction_seconds,
            network_seconds=network,
        )

    def _ensure_monitor(self) -> None:
        """Start the single deadline-monitor thread (caller holds the lock)."""
        if self._monitor is None or not self._monitor.is_alive():
            self._monitor = threading.Thread(
                target=self._deadline_loop, name="pretzel-frontend-flush", daemon=True
            )
            self._monitor.start()

    def _deadline_loop(self) -> None:
        """Flush buffers whose deadline passed; sleep until the next one."""
        while True:
            expired: List[Tuple[str, _DelayedBuffer]] = []
            with self._deadline_changed:
                now = time.perf_counter()
                next_deadline: Optional[float] = None
                for plan_id, buffer in list(self._pending.items()):
                    if buffer.deadline is None:
                        continue
                    if buffer.deadline <= now:
                        expired.append((plan_id, buffer))
                        del self._pending[plan_id]
                    elif next_deadline is None or buffer.deadline < next_deadline:
                        next_deadline = buffer.deadline
                if not expired:
                    timeout = None if next_deadline is None else next_deadline - now
                    self._deadline_changed.wait(timeout=timeout)
                    continue
            for plan_id, buffer in expired:
                try:
                    response = self._flush_buffer(plan_id, buffer)
                except Exception as error:  # noqa: BLE001 - the monitor must not die loudly
                    self.flush_errors.append(error)
                    continue
                self.auto_flushes.append(response)

    def pending_counts(self) -> Dict[str, int]:
        """Buffered (not yet flushed) record counts per plan."""
        with self._pending_lock:
            return {plan_id: len(buffer.records) for plan_id, buffer in self._pending.items()}

    # -- accounting ---------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.config.frontend_overhead_bytes + self.runtime.memory_bytes()

    def cache_stats(self) -> Dict[str, int]:
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
        }
