"""Per-stage cost models: measured (signature, backend, batch-class) throughput.

PRETZEL's white-box bet is that the runtime, not the operator author, should
decide how a shared physical stage executes.  With the kernel-backend
registry (:mod:`repro.operators.backends`) offering several implementations
per operator family, that decision needs data: this module measures the
per-record service time of every (stage signature, backend, batch-size
class) combination *online*, from the same wall-clock spans the executors
already pay for, and answers two questions on the hot path:

* **which backend** should this stage's next batch run on
  (:meth:`CostModel.select`), and
* **how large a batch** is worth coalescing for this stage
  (:meth:`CostModel.preferred_batch_cap` -- the *amortization knee*, consumed
  by the ``stage_batch_policy="cost-model"`` sizer).

Selection follows the same measured-EMA idiom the tiered arena uses for
codec choice (Ariadne-style): a short round-robin **exploration** phase
guarantees every available backend a few samples per batch class, then
**exploitation** picks the lowest per-record EMA, and a periodic **re-probe**
(every ``probe_interval`` selections) re-samples a non-best backend so a
drifting workload can dethrone a stale winner.  Batch sizes are bucketed
into power-of-two classes so a 16-way cap needs five cells, not sixteen.

The model is deliberately engine-agnostic: signatures are opaque hashables
(the real engine passes ``physical.full_signature``; the discrete-event
simulator passes its ``(model, stage)`` tuples), and observations can come
from the executors, the calibration harness, or the backend sweep benchmark.
All state sits behind one small lock -- the callers hold no lock of their
own, and one probe/observe pair per *stage batch* (not per record) keeps the
cost invisible next to a vectorized kernel call.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["CostModel"]

#: selection modes reported by snapshot(); purely informational.
_EXPLORING = "exploring"
_EXPLOITING = "exploiting"


def batch_class(batch_size: int) -> int:
    """The power-of-two class a batch size falls into (1, 2, 4, 8, ...)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return 1 << (batch_size - 1).bit_length()


class _Cell:
    """EMA of per-record seconds for one (signature, backend, class)."""

    __slots__ = ("ema", "samples")

    def __init__(self) -> None:
        self.ema = 0.0
        self.samples = 0

    def observe(self, per_record_seconds: float, smoothing: float) -> None:
        if self.samples == 0:
            self.ema = per_record_seconds
        else:
            self.ema = (1.0 - smoothing) * self.ema + smoothing * per_record_seconds
        self.samples += 1


class CostModel:
    """Online backend + batch-size choice from measured per-stage throughput.

    ``pinned`` short-circuits selection to one backend name (``"reference"``
    or a registered backend) while observations still accumulate -- this is
    how ``kernel_backend="fused"`` pins dispatch yet the cost-model *sizer*
    keeps learning knees, and how ``kernel_backend="reference"`` with
    ``stage_batch_policy="cost-model"`` stays byte-identical on the execution
    path.  ``pinned=None`` enables the explore/exploit/re-probe loop.
    """

    def __init__(
        self,
        max_batch_size: int = 16,
        probe_interval: int = 256,
        warmup_samples: int = 2,
        smoothing: float = 0.3,
        knee_tolerance: float = 0.10,
        pinned: Optional[str] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if probe_interval < 2:
            raise ValueError("probe_interval must be >= 2")
        if warmup_samples < 1:
            raise ValueError("warmup_samples must be >= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.max_batch_size = max_batch_size
        self.probe_interval = probe_interval
        self.warmup_samples = warmup_samples
        self.smoothing = smoothing
        self.knee_tolerance = knee_tolerance
        self.pinned = pinned
        self._lock = threading.Lock()
        #: (signature, backend, class) -> EMA cell
        self._cells: Dict[Tuple[Hashable, str, int], _Cell] = {}
        #: signature -> backends seen for it (insertion-ordered)
        self._candidates: Dict[Hashable, List[str]] = {}
        #: signature -> number of select() calls (drives probe cadence)
        self._selections: Dict[Hashable, int] = {}
        #: signature -> rotating cursors for exploration / re-probing
        self._explore_cursor: Dict[Hashable, int] = {}
        self._probe_cursor: Dict[Hashable, int] = {}

    # -- engine-facing backend policy (duck-typed in engines.py) -----------

    def select(self, physical: Any, batch_size: int) -> str:
        """Pick the backend for one stage batch on the real engine."""
        return self.choose(
            physical.full_signature, physical.available_backends(), batch_size
        )

    def observe(self, physical: Any, backend: str, batch_size: int, seconds: float) -> None:
        """Feed one measured stage-batch execution back into the model."""
        self.record(physical.full_signature, backend, batch_size, seconds)

    # -- core selection ----------------------------------------------------

    def choose(
        self, signature: Hashable, candidates: Sequence[str], batch_size: int
    ) -> str:
        """The explore / exploit / re-probe loop over ``candidates``.

        Warm-up is round-robin: while any candidate has fewer than
        ``warmup_samples`` observations in this batch class, the
        least-sampled candidate (ties broken by a rotating cursor, so two
        cold backends alternate) is chosen.  After warm-up the lowest
        per-record EMA wins, except every ``probe_interval``-th selection,
        which re-samples the next non-best candidate so drift is noticed.
        """
        if not candidates:
            return "reference"
        if self.pinned is not None:
            return self.pinned if self.pinned in candidates else "reference"
        if len(candidates) == 1:
            return candidates[0]
        cls = min(batch_class(batch_size), batch_class(self.max_batch_size))
        with self._lock:
            self._candidates[signature] = list(candidates)
            count = self._selections.get(signature, 0) + 1
            self._selections[signature] = count
            cold = [
                name
                for name in candidates
                if self._cell(signature, name, cls).samples < self.warmup_samples
            ]
            if cold:
                cursor = self._explore_cursor.get(signature, 0)
                self._explore_cursor[signature] = cursor + 1
                return cold[cursor % len(cold)]
            best = self._best_locked(signature, cls, candidates)
            if count % self.probe_interval == 0:
                others = [name for name in candidates if name != best]
                if others:
                    cursor = self._probe_cursor.get(signature, 0)
                    self._probe_cursor[signature] = cursor + 1
                    return others[cursor % len(others)]
            return best

    def record(
        self, signature: Hashable, backend: str, batch_size: int, seconds: float
    ) -> None:
        """Record one measured execution of ``batch_size`` records."""
        if batch_size < 1:
            return
        cls = min(batch_class(batch_size), batch_class(self.max_batch_size))
        per_record = seconds / batch_size
        with self._lock:
            self._cell(signature, backend, cls).observe(per_record, self.smoothing)
            names = self._candidates.setdefault(signature, [])
            if backend not in names:
                names.append(backend)

    def _cell(self, signature: Hashable, backend: str, cls: int) -> _Cell:
        key = (signature, backend, cls)
        cell = self._cells.get(key)
        if cell is None:
            cell = _Cell()
            self._cells[key] = cell
        return cell

    def _best_locked(
        self, signature: Hashable, cls: int, candidates: Sequence[str]
    ) -> str:
        """Lowest per-record EMA in ``cls`` (nearest observed class as fallback)."""
        best_name = candidates[0]
        best_time = float("inf")
        for name in candidates:
            cell = self._cells.get((signature, name, cls))
            if cell is None or cell.samples == 0:
                cell = self._nearest_cell_locked(signature, name, cls)
            if cell is not None and cell.samples and cell.ema < best_time:
                best_time = cell.ema
                best_name = name
        return best_name

    def _nearest_cell_locked(
        self, signature: Hashable, backend: str, cls: int
    ) -> Optional[_Cell]:
        nearest: Optional[_Cell] = None
        nearest_gap = 0
        candidate = 1
        while candidate <= batch_class(self.max_batch_size):
            cell = self._cells.get((signature, backend, candidate))
            if cell is not None and cell.samples:
                gap = abs(candidate.bit_length() - cls.bit_length())
                if nearest is None or gap < nearest_gap:
                    nearest = cell
                    nearest_gap = gap
            candidate <<= 1
        return nearest

    # -- batch-size knee ---------------------------------------------------

    def preferred_batch_cap(
        self, signature: Hashable, default: Optional[int] = None
    ) -> int:
        """The signature's measured amortization knee, as a batch-size cap.

        The knee is the smallest observed batch class whose best per-record
        time is within ``knee_tolerance`` of the best time over *all*
        observed classes: batching past it buys (almost) no amortization and
        only adds queueing delay.  With fewer than two observed classes
        there is nothing to compare yet, so the cap stays at ``default``
        (the global maximum) to keep larger classes explorable.
        """
        ceiling = default if default is not None else self.max_batch_size
        with self._lock:
            times = self._class_times_locked(signature)
            if len(times) < 2:
                return ceiling
            floor = min(times.values())
            threshold = floor * (1.0 + self.knee_tolerance)
            for cls in sorted(times):
                if times[cls] <= threshold:
                    return max(1, min(cls, ceiling))
        return ceiling

    def knee(self, signature: Hashable) -> Optional[int]:
        """The knee batch class, or None before two classes are observed."""
        with self._lock:
            times = self._class_times_locked(signature)
        if len(times) < 2:
            return None
        floor = min(times.values())
        threshold = floor * (1.0 + self.knee_tolerance)
        return min(cls for cls, seconds in times.items() if seconds <= threshold)

    def _class_times_locked(self, signature: Hashable) -> Dict[int, float]:
        """Best observed per-record EMA per batch class, across backends."""
        times: Dict[int, float] = {}
        for (sig, _backend, cls), cell in self._cells.items():
            if sig != signature or not cell.samples:
                continue
            if cls not in times or cell.ema < times[cls]:
                times[cls] = cell.ema
        return times

    # -- lifecycle / introspection ----------------------------------------

    def forget(self, signature: Hashable) -> None:
        """Drop a signature's state when its last plan unregisters."""
        with self._lock:
            for key in [key for key in self._cells if key[0] == signature]:
                del self._cells[key]
            for table in (
                self._candidates,
                self._selections,
                self._explore_cursor,
                self._probe_cursor,
            ):
                table.pop(signature, None)

    def snapshot(self) -> Dict[str, Any]:
        """Cost-model state for ``stats()``: per-signature EMAs, knee, mode."""
        with self._lock:
            signatures: Dict[str, Any] = {}
            for signature in sorted({key[0] for key in self._cells}, key=repr):
                backends: Dict[str, Dict[str, Any]] = {}
                for (sig, backend, cls), cell in sorted(
                    self._cells.items(), key=lambda item: (item[0][1], item[0][2])
                ):
                    if sig != signature or not cell.samples:
                        continue
                    backends.setdefault(backend, {})[str(cls)] = {
                        "per_record_us": cell.ema * 1e6,
                        "samples": cell.samples,
                    }
                if not backends:
                    continue
                times = self._class_times_locked(signature)
                knee = None
                if len(times) >= 2:
                    threshold = min(times.values()) * (1.0 + self.knee_tolerance)
                    knee = min(c for c, t in times.items() if t <= threshold)
                warmed = all(
                    any(cell["samples"] >= self.warmup_samples for cell in cells.values())
                    for cells in backends.values()
                )
                key = signature if isinstance(signature, str) else repr(signature)
                signatures[key] = {
                    "backends": backends,
                    "selections": self._selections.get(signature, 0),
                    "knee": knee,
                    "mode": _EXPLOITING if warmed else _EXPLORING,
                }
            return {
                "pinned": self.pinned,
                "probe_interval": self.probe_interval,
                "signatures": signatures,
            }
