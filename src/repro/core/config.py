"""Configuration of the PRETZEL runtime and its optimizations.

Every white-box optimization the paper evaluates can be toggled here, which
is how the ablation benchmarks (Section 5.2.1, Figure 8's "no Object Store"
series, Section 5.4.1's reservation scheduling) are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PretzelConfig"]


@dataclass
class PretzelConfig:
    """Runtime-wide knobs.

    Attributes
    ----------
    enable_object_store:
        Share identical parameters/operators across model plans.  Disabling
        this reproduces the "Pretzel (no ObjStore)" series of Figure 8.
    enable_aot_compilation:
        Compile physical stages ahead of time (at registration).  When off,
        the first prediction of each plan pays stage compilation, inflating
        cold latency (Section 5.2.1).
    enable_vector_pooling:
        Serve intermediate buffers from per-executor vector pools rather than
        allocating on the prediction path (Section 5.2.1).
    enable_subplan_materialization:
        Cache outputs of physical stages shared by multiple plans (Figure 10).
    materialization_budget_bytes:
        LRU budget of the materialization cache inside the Object Store.
    num_executors:
        Number of executor workers the batch engine schedules over.
    enable_stage_batching:
        Let a free executor pull a *batch* of queued stage events whose next
        stage shares the same physical-stage signature (cross-plan stage-level
        batching) instead of a single event.  Latency-sensitive requests are
        never coalesced, and reserved executors only batch within their own
        private queue.
    max_stage_batch_size:
        Upper bound on the number of stage events coalesced into one
        :class:`~repro.core.scheduler.StageBatch`.
    stage_batch_policy:
        How the scheduler picks each pull's batch cap: ``"fixed"`` always
        allows ``max_stage_batch_size``; ``"adaptive"`` sizes every pull from
        the smoothed per-signature backlog reported by the scheduler's
        signature index, using telemetry occupancy to grow toward the ceiling
        (see :mod:`repro.core.batch_policy`).
    runtime_overhead_bytes:
        Fixed footprint of the hosting process (counted once, shared by all
        plans -- the whole point of the white-box architecture).
    per_plan_overhead_bytes:
        Small per-plan bookkeeping footprint (plan metadata, stage bindings).
    vector_pool_entries:
        Number of pre-allocated buffers per size class per executor.
    """

    enable_object_store: bool = True
    enable_aot_compilation: bool = True
    enable_vector_pooling: bool = True
    enable_subplan_materialization: bool = False
    materialization_budget_bytes: int = 32 * 1024 * 1024
    num_executors: int = 2
    enable_stage_batching: bool = False
    max_stage_batch_size: int = 16
    stage_batch_policy: str = "fixed"
    runtime_overhead_bytes: int = 2 * 1024 * 1024
    per_plan_overhead_bytes: int = 4 * 1024
    vector_pool_entries: int = 8

    def clone(self, **overrides: object) -> "PretzelConfig":
        """Copy the config with some fields replaced (used by ablation benches)."""
        values = self.__dict__.copy()
        values.update(overrides)
        return PretzelConfig(**values)  # type: ignore[arg-type]
