"""Configuration of the PRETZEL runtime and its optimizations.

Every white-box optimization the paper evaluates can be toggled here, which
is how the ablation benchmarks (Section 5.2.1, Figure 8's "no Object Store"
series, Section 5.4.1's reservation scheduling) are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PretzelConfig"]


@dataclass
class PretzelConfig:
    """Runtime-wide knobs.

    Attributes
    ----------
    enable_object_store:
        Share identical parameters/operators across model plans.  Disabling
        this reproduces the "Pretzel (no ObjStore)" series of Figure 8.
    enable_aot_compilation:
        Compile physical stages ahead of time (at registration).  When off,
        the first prediction of each plan pays stage compilation, inflating
        cold latency (Section 5.2.1).
    enable_vector_pooling:
        Serve intermediate buffers from per-executor vector pools rather than
        allocating on the prediction path (Section 5.2.1).
    enable_subplan_materialization:
        Cache outputs of physical stages shared by multiple plans (Figure 10).
    materialization_budget_bytes:
        LRU budget of the materialization cache inside the Object Store.
    num_executors:
        Number of executor workers the batch engine schedules over.
    enable_stage_batching:
        Let a free executor pull a *batch* of queued stage events whose next
        stage shares the same physical-stage signature (cross-plan stage-level
        batching) instead of a single event.  Latency-sensitive requests are
        never coalesced, and reserved executors only batch within their own
        private queue.
    max_stage_batch_size:
        Upper bound on the number of stage events coalesced into one
        :class:`~repro.core.scheduler.StageBatch`.
    stage_batch_policy:
        How the scheduler picks each pull's batch cap: ``"fixed"`` always
        allows ``max_stage_batch_size``; ``"adaptive"`` sizes every pull from
        the smoothed per-signature backlog reported by the scheduler's
        signature index, using telemetry occupancy to grow toward the ceiling;
        ``"cost-model"`` caps each signature at its *measured amortization
        knee* -- the smallest batch class whose per-record time the shared
        :class:`~repro.core.cost_model.CostModel` found (nearly) as good as
        the best observed one (see :mod:`repro.core.batch_policy`).
    kernel_backend:
        Which kernel backend the executors' vectorized stage path dispatches
        to: ``"reference"`` (default) runs every operator's own
        ``transform_batch`` through the exact pre-registry code path;
        ``"cost-model"`` lets the per-stage :class:`CostModel` pick among the
        registered backends online (round-robin warm-up, then lowest measured
        per-record EMA, with periodic re-probes); or pin a registered backend
        by name (``"fused"``, ``"gemm"``, ``"numba"``) -- stages without a
        kernel for the pinned backend, and pinned backends that are
        unavailable on this host, fall back to the reference kernels.
    backend_probe_interval:
        Every N-th backend selection per stage re-samples a non-best backend
        so a drifting workload can dethrone a stale winner (only meaningful
        with ``kernel_backend="cost-model"``).
    runtime_overhead_bytes:
        Fixed footprint of the hosting process (counted once, shared by all
        plans -- the whole point of the white-box architecture).
    per_plan_overhead_bytes:
        Small per-plan bookkeeping footprint (plan metadata, stage bindings).
    vector_pool_entries:
        Number of pre-allocated buffers per size class per executor.
    num_workers:
        Worker processes of the multi-process serving tier
        (:class:`~repro.serving.cluster.PretzelCluster`).  Each worker hosts a
        full :class:`~repro.core.runtime.PretzelRuntime`; the single-process
        runtime ignores this knob.
    shm_budget_bytes:
        Size of the shared-memory arena backing deduplicated parameter
        buffers across worker processes.  ``0`` disables the arena (workers
        keep private parameter copies, the "no shared arena" ablation).
    shm_min_parameter_bytes:
        Parameters below this size are not worth a shared-memory slab (the
        slab header and page granularity would dominate); they stay private.
    max_inflight_per_worker:
        Admission control: the router sheds load (raises
        :class:`~repro.serving.router.BackpressureError`) instead of queueing
        more than this many in-flight dispatches on one worker.
    placement_replicas:
        How many workers each plan is placed on by the cluster's
        consistent-hash ring (capped at ``num_workers``).
    mp_start_method:
        ``multiprocessing`` start method for cluster workers; ``None`` picks
        ``"fork"`` where available (fast, Linux) and ``"spawn"`` elsewhere.
    worker_timeout_seconds:
        Upper bound on any single cluster <-> worker round trip (register,
        predict chunk, stats, shutdown); a worker that stays silent longer is
        treated as failed so callers never hang on a stuck process.  The
        control plane also uses it as the death deadline: a worker silent
        past this long (despite pings) is declared dead and failed over.
    transport:
        Byte transport between the cluster and its workers: ``"pipe"`` (a
        ``multiprocessing`` duplex pipe, single-host, byte-identical to the
        pre-control-plane tier) or ``"socket"`` (length-prefixed
        ``net.serialize_message`` frames over localhost TCP -- the same wire
        a remote ``python -m repro.serving.worker --listen`` worker speaks).
    heartbeat_interval_seconds:
        Control-plane heartbeat cadence.  Every worker reply piggybacks as a
        heartbeat; only workers idle longer than this receive an explicit
        ping.  Also the TTL after which the router ages out a worker's
        reported backlog (an idle worker is not shunned on stale depth).
    failover_policy:
        ``"re-register"`` (on worker death, evict it from all placements and
        re-register its plans onto survivors through the normal registration
        path) or ``"evict-only"`` (drop the dead worker from placements but
        do not re-home plans; surviving replicas keep serving).
    arena_eviction_policy:
        What to do when the shared-memory arena cannot fit a registration:
        ``"traffic-ema"`` evicts the coldest plan's exclusively-referenced
        slabs (victims picked by per-plan request-rate EMA, Ariadne-style;
        the victim's workers privatize those parameters first, so it keeps
        serving), ``"compress-tiered"`` inserts a compressed tier before
        that eviction -- the coldest resident plan's slabs are compressed in
        place and the first request touching it rehydrates them; plans whose
        slabs do not compress fall through to the privatize-then-evict path,
        which becomes the final tier -- or ``"none"`` (the new plan's
        overflowing parameters simply stay private, the pre-control-plane
        behaviour).
    arena_codec:
        Codec for the compressed tier: ``"auto"`` picks per slab from the
        slab size, the plan's traffic EMA and each codec's observed
        compression-ratio EMA; or pin one of ``"zlib-fast"``, ``"zlib"``,
        ``"lzma"``.  Ignored unless the policy is ``"compress-tiered"``.
    arena_min_compress_ratio:
        A slab enters the compressed tier only if compressed/raw is at or
        below this (and the payload lands in a smaller slab class);
        otherwise the plan skips straight to privatize-then-evict.
    arena_cold_compress_ema:
        Decayed-traffic threshold below which a large slab is considered
        deep-cold and the heavier (better-ratio) codec is tried first.
    enable_profiling:
        Run the always-on sampling profiler (:mod:`repro.profiling`): a
        background thread samples per-thread frames, attributing self-time
        to pipeline stages, and the runtime's named locks record contended
        wait time.  Surfaced as ``stats()["profile"]``; overhead is bounded
        by the contention microbench's <5% assert, so it defaults to on.
    profiler_interval_seconds:
        Sampling period of the profiler thread (default 5 ms / 200 Hz).
    scheduler_shards:
        Number of lock stripes per scheduler priority class.  ``1``
        (default) keeps the scheduler's global FIFO order byte-identical to
        the single-condition scheduler; higher values stripe each class by
        physical-stage signature so producers and executors contend on
        ``1/shards`` of the traffic (per-signature FIFO and stage batching
        are preserved -- a signature always lives on one stripe).
    arena_concurrency:
        ``"lock-free"`` (default) serves the shared-memory arena's slab
        alloc/free from per-size-class concurrent free lists (GIL-atomic
        deque push/pop in the style of Blelloch & Wei's fixed-size-class
        free lists) with only the bump pointer/compaction behind a narrow
        lock; ``"locked"`` keeps every allocator operation behind one
        global lock (the pre-profiling baseline the contention microbench
        compares against).
    enable_tracing:
        Run the distributed request tracer (:mod:`repro.observability`):
        the front door head-samples 1-in-``trace_sample_rate`` requests,
        threads a :class:`~repro.observability.tracing.TraceContext` through
        the wire envelope, and records typed spans at every hop into a
        per-process flight recorder.  Surfaced as ``stats()["tracing"]``,
        ``cluster.trace_dump()`` and ``cluster.trace_breakdown()``; like the
        profiler, overhead is gated under 5% by a benchmark, so it defaults
        to on.
    trace_sample_rate:
        Head-based sampling ratio: trace 1 in N front-door requests
        (``1`` traces everything -- tests and demos; the default keeps the
        unsampled path to one counter increment and a modulo).
    trace_buffer_size:
        Capacity of each process's span ring buffer (the flight recorder).
        Oldest spans are evicted first; ``trace_dump`` harvests before
        eviction matters at the default prediction rates.
    """

    enable_object_store: bool = True
    enable_aot_compilation: bool = True
    enable_vector_pooling: bool = True
    enable_subplan_materialization: bool = False
    materialization_budget_bytes: int = 32 * 1024 * 1024
    num_executors: int = 2
    enable_stage_batching: bool = False
    max_stage_batch_size: int = 16
    stage_batch_policy: str = "fixed"
    kernel_backend: str = "reference"
    backend_probe_interval: int = 256
    runtime_overhead_bytes: int = 2 * 1024 * 1024
    per_plan_overhead_bytes: int = 4 * 1024
    vector_pool_entries: int = 8
    num_workers: int = 2
    shm_budget_bytes: int = 64 * 1024 * 1024
    shm_min_parameter_bytes: int = 4096
    max_inflight_per_worker: int = 32
    placement_replicas: int = 2
    mp_start_method: Optional[str] = None
    worker_timeout_seconds: float = 60.0
    transport: str = "pipe"
    heartbeat_interval_seconds: float = 5.0
    failover_policy: str = "re-register"
    arena_eviction_policy: str = "traffic-ema"
    arena_codec: str = "auto"
    arena_min_compress_ratio: float = 0.9
    arena_cold_compress_ema: float = 0.5
    enable_profiling: bool = True
    profiler_interval_seconds: float = 0.005
    scheduler_shards: int = 1
    arena_concurrency: str = "lock-free"
    enable_tracing: bool = True
    trace_sample_rate: int = 64
    trace_buffer_size: int = 2048

    def clone(self, **overrides: object) -> "PretzelConfig":
        """Copy the config with some fields replaced (used by ablation benches)."""
        values = self.__dict__.copy()
        values.update(overrides)
        return PretzelConfig(**values)  # type: ignore[arg-type]
