"""PRETZEL: the white-box prediction serving system.

The package mirrors the paper's architecture (Section 4):

* **off-line phase** -- :mod:`repro.core.flour` (language-integrated API),
  :mod:`repro.core.oven` (optimizer + model plan compiler) and
  :mod:`repro.core.object_store` (shared parameter storage);
* **on-line phase** -- :mod:`repro.core.runtime` (catalog + engines),
  :mod:`repro.core.scheduler` (event-based late-binding scheduling over
  executors), :mod:`repro.core.vector_pool` (pooled memory) and
  :mod:`repro.core.frontend` (client-facing layer with external
  optimizations such as prediction caching and delayed batching).
"""

from repro.core.config import PretzelConfig
from repro.core.flour import FlourContext, FlourProgram, flour_from_pipeline
from repro.core.object_store import ObjectStore
from repro.core.runtime import PretzelRuntime
from repro.core.frontend import PretzelFrontEnd, FrontEndConfig
from repro.core.statistics import TransformStats

__all__ = [
    "PretzelConfig",
    "FlourContext",
    "FlourProgram",
    "flour_from_pipeline",
    "ObjectStore",
    "PretzelRuntime",
    "PretzelFrontEnd",
    "FrontEndConfig",
    "TransformStats",
]
