"""Statistics gathered from training and attached to Flour transformations.

The paper instruments ML.Net training to collect per-operator statistics
(maximum vector sizes, dense/sparse representations, ...) that Oven uses to
pick physical implementations and that the Runtime uses to size vector pools
(Section 4.1.1).  :class:`TransformStats` is that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence

import numpy as np

from repro.operators.vectors import Vector

__all__ = ["TransformStats", "collect_output_stats"]


@dataclass
class TransformStats:
    """Training-time statistics for one transformation's output."""

    max_vector_size: int = 0
    avg_nnz: float = 0.0
    density: float = 1.0
    is_sparse: bool = False
    sample_count: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_dense(self) -> bool:
        return not self.is_sparse

    def merge(self, other: "TransformStats") -> "TransformStats":
        """Combine statistics from two samples of the same transformation."""
        total = self.sample_count + other.sample_count
        if total == 0:
            return TransformStats()
        avg_nnz = (
            self.avg_nnz * self.sample_count + other.avg_nnz * other.sample_count
        ) / total
        density = (
            self.density * self.sample_count + other.density * other.sample_count
        ) / total
        return TransformStats(
            max_vector_size=max(self.max_vector_size, other.max_vector_size),
            avg_nnz=avg_nnz,
            density=density,
            is_sparse=self.is_sparse or other.is_sparse,
            sample_count=total,
            extra={**self.extra, **other.extra},
        )


def collect_output_stats(outputs: Sequence[Any]) -> TransformStats:
    """Compute :class:`TransformStats` from sample outputs of a transformation."""
    max_size = 0
    nnz_values = []
    sparse = False
    for value in outputs:
        if isinstance(value, Vector):
            max_size = max(max_size, value.size)
            nnz_values.append(value.nnz())
            sparse = sparse or (value.nnz() < value.size)
        elif isinstance(value, (list, tuple)):
            max_size = max(max_size, len(value))
            nnz_values.append(len(value))
        elif isinstance(value, (int, float, np.floating)):
            max_size = max(max_size, 1)
            nnz_values.append(1)
    count = len(nnz_values)
    avg_nnz = float(np.mean(nnz_values)) if nnz_values else 0.0
    density = (avg_nnz / max_size) if max_size else 1.0
    return TransformStats(
        max_vector_size=max_size,
        avg_nnz=avg_nnz,
        density=density,
        is_sparse=sparse,
        sample_count=count,
    )
