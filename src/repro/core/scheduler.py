"""Event-based, late-binding scheduling of stage executions (Section 4.2.2).

The Scheduler never pushes work to a specific executor.  Instead it maintains
shared :class:`ReadyQueue` instances -- a *low priority* queue for the first
stage of newly submitted requests and a *high priority* queue for stages of
requests that are already in flight -- and executors *pull* the next event
when they become free.  Started pipelines therefore finish (and return their
pooled vectors) before new pipelines are admitted, which is exactly the
paper's rationale for the two queues.

**The ready queues are signature-indexed.**  A :class:`ReadyQueue` preserves
strict FIFO order (pops are byte-identical to a plain deque) but additionally
indexes its queued events by the ``physical.full_signature`` of the stage
each event will run.  Batch formation therefore never scans a queue: the
leader is popped FIFO, and its coalescible peers are popped straight out of
the leader signature's bucket, in FIFO order, at O(1) per event -- so
:meth:`Scheduler.next_batch` costs O(batch size) instead of O(queue depth),
and :meth:`Scheduler.signature_depths` reports the per-signature backlog for
free.

**Cross-plan stage-level batching.**  Because plans compiled against the same
Object Store point at the *same* physical stages, events queued by different
requests -- even requests for different model plans -- frequently wait to run
an identical physical stage.  With ``enable_stage_batching`` on, a free
executor pulls a :class:`StageBatch` instead of a single event: the first
runnable event plus every other queued event whose next stage shares its
``physical.full_signature``, up to the cap chosen by the configured batch
sizer.  Latency-sensitive requests always bypass coalescing (they run alone,
preserving the request-response latency profile), and reserved executors only
coalesce within their private queue, so reservation isolation is preserved.
Observed batch sizes and the backlog behind each pull are recorded in
:class:`repro.telemetry.batching.StageBatchTelemetry`.

**Adaptive batch sizing.**  The per-pull cap comes from a policy object
(:mod:`repro.core.batch_policy`): ``stage_batch_policy="fixed"`` (default)
always allows ``max_stage_batch_size``; ``"adaptive"`` sizes each pull from
the smoothed per-signature backlog the index exposes, growing toward the
ceiling only while telemetry shows batches actually filling.

Reservation-based scheduling (Section 4.2.2, "Reservation-based Scheduling")
gives a plan a dedicated executor and a private queue, emulating
container-style isolation while still sharing parameters and physical stages.

**Sharded queue locking.**  The scheduler's shared state is no longer a
single condition variable: each priority class is a list of ``shards``
*stripes*, each its own (:class:`~repro.profiling.locks.ProfiledLock`,
:class:`ReadyQueue`) pair, and events are routed to ``hash(signature) %
shards`` -- a signature always lives on exactly one stripe, so per-signature
FIFO order and stage batching are preserved while producers and executors
contend on ``1/shards`` of the traffic.  ``shards=1`` (the default) keeps
the global FIFO order of the single-condition scheduler.  Executors park on
a separate sleep condition guarded by a sleeper count: a producer only
touches the condition when someone is actually asleep, and a consumer
re-polls the stripes *after* registering as a sleeper, which (under the
GIL's sequential consistency) closes the missed-wakeup window.

Shutting the scheduler down fails every still-queued request fast (instead of
leaving callers blocked in :meth:`InferenceRequest.wait` until their timeout).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.batch_policy import make_batch_sizer
from repro.core.oven.plan import ModelPlan
from repro.observability import registry, tracer
from repro.observability.tracing import TraceContext
from repro.profiling.locks import ProfiledLock, ProfiledRLock
from repro.telemetry.batching import StageBatchTelemetry

__all__ = ["InferenceRequest", "StageEvent", "StageBatch", "ReadyQueue", "Scheduler"]


class InferenceRequest:
    """One prediction request travelling through the batch engine."""

    _counter = itertools.count()

    def __init__(
        self,
        plan_id: str,
        plan: ModelPlan,
        record: Any,
        latency_sensitive: bool = False,
        trace: Optional[TraceContext] = None,
    ):
        self.request_id = next(InferenceRequest._counter)
        self.plan_id = plan_id
        self.plan = plan
        self.record = record
        self.latency_sensitive = latency_sensitive
        #: sampled trace context (None for the untraced fast path); the
        #: executors and the scheduler record spans against it
        self.trace = trace
        #: per-request context of exported stage values
        self.values: Dict[Tuple[str, str], Any] = {}
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._done = threading.Event()

    # -- completion -----------------------------------------------------------

    def complete(self, result: Any) -> None:
        self.result = result
        self.completed_at = time.perf_counter()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.completed_at = time.perf_counter()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request_id} did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:
        return f"InferenceRequest(id={self.request_id}, plan={self.plan_id!r})"


@dataclass
class StageEvent:
    """A schedulable unit: one stage of one in-flight request."""

    request: InferenceRequest
    stage_index: int
    #: set by ``Scheduler._enqueue`` for traced requests only; the executor
    #: turns it into a ``queue.wait`` span when it pulls the event
    enqueued_at: Optional[float] = None

    @property
    def is_first(self) -> bool:
        return self.stage_index == 0

    @property
    def is_last(self) -> bool:
        return self.stage_index == len(self.request.plan.stages) - 1

    @property
    def signature(self) -> str:
        """Signature of the physical stage this event will execute."""
        return self.request.plan.stage_signature(self.stage_index)


@dataclass
class StageBatch:
    """A coalesced group of stage events sharing one physical stage.

    Every member's next stage has the same ``physical.full_signature``, so the
    whole batch can be served by a single (possibly vectorized)
    :meth:`~repro.core.oven.physical.PhysicalStage.execute_batch` call.
    """

    events: List[StageEvent]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a StageBatch needs at least one event")

    @property
    def signature(self) -> str:
        return self.events[0].signature

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class ReadyQueue:
    """A FIFO event queue with a per-signature index of its contents.

    Pops (:meth:`popleft`) come out in exact insertion order, byte-identical
    to the flat deques the seed scheduler used.  On top of that the queue
    maintains, per ``physical.full_signature``:

    * a *coalescible* bucket -- an ordered map of the queued events that stage
      batching may fold into a batch (latency-sensitive events are excluded,
      they only ever leave through :meth:`popleft`); and
    * a total depth counter covering **all** queued events of the signature,
      so :meth:`signature_depths` sums exactly to ``len(queue)``.

    Every operation is O(1) per event touched: :meth:`pop_matching` pops
    members straight off the signature's bucket, so batch formation costs
    O(batch size) regardless of how deep the queue is.
    """

    def __init__(self) -> None:
        self._events: "OrderedDict[int, StageEvent]" = OrderedDict()
        self._coalescible: Dict[str, "OrderedDict[int, StageEvent]"] = {}
        self._depths: Dict[str, int] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self):
        return iter(self._events.values())

    def append(self, event: StageEvent) -> None:
        seq = next(self._counter)
        signature = event.signature
        self._events[seq] = event
        self._depths[signature] = self._depths.get(signature, 0) + 1
        if not event.request.latency_sensitive:
            self._coalescible.setdefault(signature, OrderedDict())[seq] = event

    def popleft(self) -> Optional[StageEvent]:
        """Pop the oldest event (None when empty)."""
        if not self._events:
            return None
        seq, event = self._events.popitem(last=False)
        self._forget(seq, event.signature)
        return event

    def pop_matching(self, signature: str, limit: int) -> List[StageEvent]:
        """Pop up to ``limit`` coalescible events of ``signature``, oldest first.

        Latency-sensitive events are never returned; they stay queued for
        :meth:`popleft`.  Cost is O(number of events returned).
        """
        taken: List[StageEvent] = []
        bucket = self._coalescible.get(signature)
        if bucket is None or limit <= 0:
            return taken
        while bucket and len(taken) < limit:
            seq, event = bucket.popitem(last=False)
            del self._events[seq]
            self._forget(seq, signature)
            taken.append(event)
        return taken

    def coalescible_depth(self, signature: str) -> int:
        """How many queued events of ``signature`` a batch could absorb."""
        bucket = self._coalescible.get(signature)
        return len(bucket) if bucket else 0

    def signature_depths(self) -> Dict[str, int]:
        """Total queued events per signature (including latency-sensitive)."""
        return dict(self._depths)

    def drain(self) -> List[StageEvent]:
        """Remove and return every queued event, oldest first (for shutdown)."""
        events = list(self._events.values())
        self._events.clear()
        self._coalescible.clear()
        self._depths.clear()
        return events

    def _forget(self, seq: int, signature: str) -> None:
        remaining = self._depths[signature] - 1
        if remaining:
            self._depths[signature] = remaining
        else:
            del self._depths[signature]
        bucket = self._coalescible.get(signature)
        if bucket is not None:
            bucket.pop(seq, None)
            if not bucket:
                del self._coalescible[signature]


class _Stripe:
    """One lock+queue pair of a striped priority class.

    Every stripe of a class shares one lock *name*, so the profiling
    registry aggregates their wait time into a single per-class row.
    """

    __slots__ = ("lock", "queue")

    def __init__(self, name: str) -> None:
        self.lock = ProfiledLock(name)
        self.queue = ReadyQueue()


class Scheduler:
    """Signature-indexed ready queues + reservation bookkeeping; executors pull from it.

    Locking: each priority class is ``shards`` independently locked stripes
    (events routed by signature hash, so per-signature FIFO and batching are
    untouched); reservations live behind their own lock; sleeping executors
    park on a dedicated condition that producers touch only when the sleeper
    count says someone is actually waiting.  The ``scheduled_events`` /
    ``completed_requests`` counters are registry-backed
    :class:`~repro.observability.metrics.Counter` instruments (the
    attributes remain as read-only properties), still bumped with plain
    ``+=`` inside the instrument -- a preemption between read and store can
    drop an increment, which is acceptable for telemetry and keeps the
    counters off every lock.
    """

    def __init__(
        self,
        enable_stage_batching: bool = False,
        max_stage_batch_size: int = 16,
        stage_batch_policy: str = "fixed",
        shards: int = 1,
        cost_model: Optional[Any] = None,
    ) -> None:
        if max_stage_batch_size < 1:
            raise ValueError("max_stage_batch_size must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.enable_stage_batching = enable_stage_batching
        self.max_stage_batch_size = max_stage_batch_size
        self.stage_batch_policy = stage_batch_policy
        self.shards = shards
        self.batching = StageBatchTelemetry()
        self.batch_sizer = make_batch_sizer(
            stage_batch_policy,
            max_stage_batch_size,
            telemetry=self.batching,
            cost_model=cost_model,
        )
        self._low = [_Stripe("scheduler.low") for _ in range(shards)]
        self._high = [_Stripe("scheduler.high") for _ in range(shards)]
        #: plan id -> executor id holding the reservation
        self._reservations: Dict[str, int] = {}
        #: executor id -> private queue of events for its reserved plans
        self._reserved_queues: Dict[int, ReadyQueue] = {}
        #: guards the two reservation tables and every private queue;
        #: reentrant because `unreserve` re-routes drained events through
        #: `_enqueue`, whose reserved branch takes it again
        self._reserve_lock = ProfiledRLock("scheduler.reserve")
        #: executors park here; `_sleepers` gates producer-side notifies so
        #: an uncontended submit never touches the condition
        self._sleep_cond = threading.Condition()
        self._sleepers = 0
        self._shutdown = False
        #: per-instance instruments on the unified metrics plane; the
        #: ``scheduled_events`` / ``completed_requests`` properties keep the
        #: historical attribute API reading exactly this scheduler's counts
        self._events_total = registry().counter("pretzel_scheduler_events_total")
        self._completed_total = registry().counter("pretzel_scheduler_completed_total")

    @property
    def scheduled_events(self) -> int:
        return self._events_total.value

    @property
    def completed_requests(self) -> int:
        return self._completed_total.value

    def _stripe_of(self, stripes: List[_Stripe], signature: str) -> _Stripe:
        if len(stripes) == 1:
            return stripes[0]
        return stripes[hash(signature) % len(stripes)]

    def _wake(self) -> None:
        """Wake parked executors iff any are parked.

        A producer that appended before a consumer registered as a sleeper
        may read a zero count here -- but that consumer re-polls the stripes
        *after* incrementing ``_sleepers`` and before waiting, so under the
        GIL's total order it either sees the append or is seen by this read.
        Never called with a stripe lock held (keeps the lock graph acyclic).
        """
        if self._sleepers:
            with self._sleep_cond:
                self._sleep_cond.notify_all()

    # -- per-signature state ------------------------------------------------------

    def forget_signature(self, signature: str) -> None:
        """Drop batching state for a signature whose last plan unregistered.

        Clears both the telemetry counters and the adaptive sizer's backlog
        EMA so plan churn cannot grow them without bound, and a later plan
        re-creating the same physical stage starts from a fresh estimate.
        (The telemetry is internally locked; the sizer's EMA table tolerates
        a racing ``batch_cap`` resurrecting one forgotten entry.)
        """
        self.batching.forget(signature)
        self.batch_sizer.forget(signature)

    # -- reservations -----------------------------------------------------------

    def reserve(self, plan_id: str, executor_id: int) -> None:
        """Dedicate ``executor_id`` to ``plan_id`` (container-like isolation)."""
        with self._reserve_lock:
            self._reservations[plan_id] = executor_id
            self._reserved_queues.setdefault(executor_id, ReadyQueue())

    def unreserve(self, plan_id: str) -> bool:
        """Release a plan's reservation (plan teardown).

        The executor returns to the shared pool once no other plan reserves
        it; events still sitting in its private queue are re-routed through
        the normal enqueue path (they belong to plans that are being torn
        down or that shared the reservation) so nothing is stranded in a
        queue no executor will ever drain again.
        """
        stranded: List[StageEvent] = []
        with self._reserve_lock:
            executor_id = self._reservations.pop(plan_id, None)
            if executor_id is None:
                return False
            if executor_id in self._reservations.values():
                return True  # another plan still holds this executor
            queue = self._reserved_queues.pop(executor_id, None)
            while queue is not None:
                event = queue.popleft()
                if event is None:
                    break
                self._events_total.add(-1)  # _enqueue re-counts it
                if not self._enqueue(event):
                    stranded.append(event)
        self._wake()
        for event in stranded:  # re-route raced shutdown: fail fast
            if not event.request.done:
                event.request.fail(RuntimeError("scheduler is shut down"))
        return True

    def reservation_for(self, plan_id: str) -> Optional[int]:
        return self._reservations.get(plan_id)

    def reserved_executor_ids(self) -> List[int]:
        return list(self._reserved_queues)

    # -- submission --------------------------------------------------------------

    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Enqueue the first stage of a request on the low-priority queue.

        Submissions against a shut-down scheduler fail the request immediately
        rather than queueing work that will never be served.
        """
        event = StageEvent(request, 0)
        if self._enqueue(event):
            self._wake()
        else:
            request.fail(RuntimeError("scheduler is shut down"))
        return request

    def _enqueue(self, event: StageEvent) -> bool:
        """Route one event to its queue; False iff the scheduler is shut down.

        The shutdown flag is re-checked *inside* the target queue's lock:
        `shutdown` sets the flag and then drains each queue under its lock,
        so an enqueue that wins its lock before the drain is drained, and one
        that loses observes the flag -- either way nothing is stranded.
        """
        if event.request.trace is not None:
            event.enqueued_at = time.perf_counter()
        executor_id = self._reservations.get(event.request.plan_id)  # atomic probe
        if executor_id is not None:
            with self._reserve_lock:
                queue = self._reserved_queues.get(executor_id)
                if (
                    queue is not None
                    and self._reservations.get(event.request.plan_id) == executor_id
                ):
                    if self._shutdown:
                        return False
                    self._events_total.inc()
                    queue.append(event)
                    return True
            # reservation vanished between the probe and the lock: fall
            # through to shared routing
        stripes = self._low if event.is_first else self._high
        stripe = self._stripe_of(stripes, event.signature)
        with stripe.lock:
            if self._shutdown:
                return False
            self._events_total.inc()
            stripe.queue.append(event)
        return True

    # -- executor protocol ---------------------------------------------------------

    def next_event(self, executor_id: int, timeout: float = 0.05) -> Optional[StageEvent]:
        """Late binding: a free executor pulls the next runnable event.

        Reserved executors only serve their private queue.  Shared executors
        drain the high-priority queues (in-flight pipelines, which hold pooled
        vectors) before admitting new pipelines from the low-priority queues.
        """
        return self._next_ready(executor_id, time.perf_counter() + timeout)

    def next_batch(self, executor_id: int, timeout: float = 0.05) -> Optional[StageBatch]:
        """Pull the next runnable event plus every coalescible peer.

        The first runnable event is chosen exactly as :meth:`next_event` would;
        when stage batching is enabled and the event is not latency-sensitive,
        queued events visible to this executor whose next stage has the same
        physical signature are popped straight off the signature index (up to
        the batch sizer's cap for this pull).  Queue order of non-coalesced
        events is preserved, and formation cost is O(batch size).
        """
        event = self._next_ready(executor_id, time.perf_counter() + timeout)
        if event is None:
            return None
        events = [event]
        backlog = 0
        formed_at = time.perf_counter()
        if self.enable_stage_batching and not event.request.latency_sensitive:
            backlog = self._coalesce_into(events, executor_id)
        # internally-locked telemetry; recorded outside every queue lock
        self.batching.record(event.signature, len(events), backlog=backlog)
        if len(events) > 1:
            traced = [member.request.trace for member in events if member.request.trace]
            if traced:
                # one batch span belongs to every member trace: record it on
                # the first traced member, link the rest by trace id
                tracer().record(
                    traced[0].trace_id,
                    "batch.form",
                    time.perf_counter() - formed_at,
                    parent_span_id=traced[0].parent_span_id,
                    attributes={
                        "signature": event.signature,
                        "size": len(events),
                        "backlog": backlog,
                        "links": [trace.trace_id for trace in traced],
                    },
                )
        return StageBatch(events)

    def _next_ready(self, executor_id: int, deadline: float) -> Optional[StageEvent]:
        """Poll, then park until an event arrives or the deadline passes."""
        while not self._shutdown:
            event = self._try_pop(executor_id)
            if event is not None:
                return event
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return None
            with self._sleep_cond:
                self._sleepers += 1
                try:
                    # Re-poll after becoming visible as a sleeper: any append
                    # sequenced before our increment is found here, any append
                    # after it sees the non-zero count and notifies.
                    event = self._try_pop(executor_id)
                    if event is not None:
                        return event
                    if self._shutdown:
                        return None
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return None
                    self._sleep_cond.wait(remaining)
                finally:
                    self._sleepers -= 1
        return None

    def _try_pop(self, executor_id: int) -> Optional[StageEvent]:
        """One non-blocking pass over the queues visible to this executor."""
        if executor_id in self._reserved_queues:  # atomic probe
            with self._reserve_lock:
                reserved = self._reserved_queues.get(executor_id)
                if reserved is not None:
                    return reserved.popleft()
            # reservation dropped while we waited: fall through to shared
        shards = self.shards
        start = executor_id % shards
        for stripes in (self._high, self._low):
            for step in range(shards):
                stripe = stripes[(start + step) % shards]
                # Racy emptiness pre-check: skipping idle stripes without
                # touching their locks is what keeps the scan O(1) in the
                # common case.  A miss (emptied between check and pop) just
                # returns None from popleft.
                if not stripe.queue:
                    continue
                with stripe.lock:
                    event = stripe.queue.popleft()
                if event is not None:
                    return event
        return None

    def _coalesce_into(self, events: List[StageEvent], executor_id: int) -> int:
        """Pop same-signature peers from this executor's queues into ``events``.

        A reserved executor only coalesces from its private queue (isolation);
        shared executors drain the high-priority stripe before the low-priority
        one, mirroring the pull order.  Because stripes are routed by signature,
        all of a leader's peers live on the leader's stripe index in each
        class.  Latency-sensitive events are never indexed as coalescible, so
        they are skipped by construction.  Returns the coalescible backlog
        observed behind the leader (for telemetry and the adaptive sizer).
        """
        signature = events[0].signature
        if executor_id in self._reserved_queues:
            with self._reserve_lock:
                reserved = self._reserved_queues.get(executor_id)
                if reserved is not None:
                    backlog = reserved.coalescible_depth(signature)
                    limit = self.batch_sizer.batch_cap(signature, backlog)
                    events.extend(reserved.pop_matching(signature, limit - len(events)))
                    return backlog
        high = self._stripe_of(self._high, signature)
        low = self._stripe_of(self._low, signature)
        # Depth reads are racy by design (atomic dict lookups; the backlog
        # only steers the sizer); the pops below hold each stripe's lock.
        backlog = high.queue.coalescible_depth(signature) + low.queue.coalescible_depth(
            signature
        )
        limit = self.batch_sizer.batch_cap(signature, backlog)
        for stripe in (high, low):
            if len(events) >= limit:
                break
            with stripe.lock:
                events.extend(stripe.queue.pop_matching(signature, limit - len(events)))
        return backlog

    def on_stage_complete(self, event: StageEvent, output: Any) -> None:
        """Advance the request: schedule the next stage or complete it.

        Requeueing into a shut-down scheduler (an executor finishing its
        current stage while the pool is stopping) fails the request fast
        instead of stranding it in a queue nobody will ever drain.
        """
        request = event.request
        if event.is_last:
            request.complete(output)
            self._completed_total.inc()
            trace = request.trace
            if trace is not None and trace.owns_root:
                # the hop that minted the context roots the trace; span id is
                # the pre-minted root id every child already parents under
                duration = (request.completed_at or 0.0) - request.submitted_at
                tracer().record(
                    trace.trace_id,
                    "request",
                    duration,
                    span_id=trace.parent_span_id,
                    attributes={"plan_id": request.plan_id, "engine": "batch"},
                )
            return
        next_event = StageEvent(request, event.stage_index + 1)
        if self._enqueue(next_event):
            self._wake()
        else:
            request.fail(RuntimeError("scheduler shut down before request completed"))

    def on_stage_error(self, event: StageEvent, error: BaseException) -> None:
        event.request.fail(error)

    # -- lifecycle -------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop serving events and fail every still-queued request fast.

        Without this, a request whose events were queued but never pulled would
        block its caller in :meth:`InferenceRequest.wait` until the timeout.
        Sets the flag first, then drains each queue under its own lock; an
        enqueue racing this either lands before the drain (and is drained) or
        observes the flag inside the lock and fails its request itself.
        """
        self._shutdown = True
        abandoned: List[StageEvent] = []
        for stripes in (self._low, self._high):
            for stripe in stripes:
                with stripe.lock:
                    abandoned.extend(stripe.queue.drain())
        with self._reserve_lock:
            for queue in self._reserved_queues.values():
                abandoned.extend(queue.drain())
        self._wake()
        for event in abandoned:
            if not event.request.done:
                event.request.fail(
                    RuntimeError(
                        f"scheduler shut down with request {event.request.request_id} pending"
                    )
                )

    @property
    def is_shut_down(self) -> bool:
        return self._shutdown

    def queue_depths(self) -> Dict[str, int]:
        depths = {
            "low": sum(len(stripe.queue) for stripe in self._low),
            "high": sum(len(stripe.queue) for stripe in self._high),
        }
        with self._reserve_lock:
            for executor_id, queue in self._reserved_queues.items():
                depths[f"reserved[{executor_id}]"] = len(queue)
        return depths

    def signature_depths(self) -> Dict[str, int]:
        """Queued events per physical-stage signature, across every queue.

        The per-signature index makes this a dictionary merge -- no queue is
        scanned -- so telemetry can sample the backlog shape cheaply even
        under deep queues.
        """
        totals: Dict[str, int] = {}
        for stripes in (self._low, self._high):
            for stripe in stripes:
                with stripe.lock:
                    merged = stripe.queue.signature_depths()
                for signature, depth in merged.items():
                    totals[signature] = totals.get(signature, 0) + depth
        with self._reserve_lock:
            merged_reserved = [
                queue.signature_depths() for queue in self._reserved_queues.values()
            ]
        for depths in merged_reserved:
            for signature, depth in depths.items():
                totals[signature] = totals.get(signature, 0) + depth
        return totals
