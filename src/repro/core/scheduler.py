"""Event-based, late-binding scheduling of stage executions (Section 4.2.2).

The Scheduler never pushes work to a specific executor.  Instead it maintains
a shared pair of queues -- a *low priority* queue for the first stage of newly
submitted requests and a *high priority* queue for stages of requests that are
already in flight -- and executors *pull* the next event when they become
free.  Started pipelines therefore finish (and return their pooled vectors)
before new pipelines are admitted, which is exactly the paper's rationale for
the two queues.

Reservation-based scheduling (Section 4.2.2, "Reservation-based Scheduling")
gives a plan a dedicated executor and a private queue, emulating
container-style isolation while still sharing parameters and physical stages.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.oven.plan import ModelPlan

__all__ = ["InferenceRequest", "StageEvent", "Scheduler"]


class InferenceRequest:
    """One prediction request travelling through the batch engine."""

    _counter = itertools.count()

    def __init__(self, plan_id: str, plan: ModelPlan, record: Any, latency_sensitive: bool = False):
        self.request_id = next(InferenceRequest._counter)
        self.plan_id = plan_id
        self.plan = plan
        self.record = record
        self.latency_sensitive = latency_sensitive
        #: per-request context of exported stage values
        self.values: Dict[Tuple[str, str], Any] = {}
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._done = threading.Event()

    # -- completion -----------------------------------------------------------

    def complete(self, result: Any) -> None:
        self.result = result
        self.completed_at = time.perf_counter()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.completed_at = time.perf_counter()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request_id} did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:
        return f"InferenceRequest(id={self.request_id}, plan={self.plan_id!r})"


@dataclass
class StageEvent:
    """A schedulable unit: one stage of one in-flight request."""

    request: InferenceRequest
    stage_index: int

    @property
    def is_first(self) -> bool:
        return self.stage_index == 0

    @property
    def is_last(self) -> bool:
        return self.stage_index == len(self.request.plan.stages) - 1


class Scheduler:
    """Shared queues + reservation bookkeeping; executors pull events from it."""

    def __init__(self) -> None:
        self._low: Deque[StageEvent] = deque()
        self._high: Deque[StageEvent] = deque()
        #: plan id -> executor id holding the reservation
        self._reservations: Dict[str, int] = {}
        #: executor id -> private queue of events for its reserved plans
        self._reserved_queues: Dict[int, Deque[StageEvent]] = {}
        self._condition = threading.Condition()
        self._shutdown = False
        self.scheduled_events = 0
        self.completed_requests = 0

    # -- reservations -----------------------------------------------------------

    def reserve(self, plan_id: str, executor_id: int) -> None:
        """Dedicate ``executor_id`` to ``plan_id`` (container-like isolation)."""
        with self._condition:
            self._reservations[plan_id] = executor_id
            self._reserved_queues.setdefault(executor_id, deque())

    def reservation_for(self, plan_id: str) -> Optional[int]:
        return self._reservations.get(plan_id)

    def reserved_executor_ids(self) -> List[int]:
        return list(self._reserved_queues)

    # -- submission --------------------------------------------------------------

    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Enqueue the first stage of a request on the low-priority queue."""
        event = StageEvent(request, 0)
        with self._condition:
            self._enqueue(event)
            self._condition.notify_all()
        return request

    def _enqueue(self, event: StageEvent) -> None:
        self.scheduled_events += 1
        executor_id = self._reservations.get(event.request.plan_id)
        if executor_id is not None:
            self._reserved_queues[executor_id].append(event)
            return
        if event.is_first:
            self._low.append(event)
        else:
            self._high.append(event)

    # -- executor protocol ---------------------------------------------------------

    def next_event(self, executor_id: int, timeout: float = 0.05) -> Optional[StageEvent]:
        """Late binding: a free executor pulls the next runnable event.

        Reserved executors only serve their private queue.  Shared executors
        drain the high-priority queue (in-flight pipelines, which hold pooled
        vectors) before admitting new pipelines from the low-priority queue.
        """
        deadline = time.perf_counter() + timeout
        with self._condition:
            while not self._shutdown:
                reserved = self._reserved_queues.get(executor_id)
                if reserved is not None:
                    if reserved:
                        return reserved.popleft()
                else:
                    if self._high:
                        return self._high.popleft()
                    if self._low:
                        return self._low.popleft()
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return None
                self._condition.wait(remaining)
            return None

    def on_stage_complete(self, event: StageEvent, output: Any) -> None:
        """Advance the request: schedule the next stage or complete it."""
        request = event.request
        if event.is_last:
            request.complete(output)
            with self._condition:
                self.completed_requests += 1
                self._condition.notify_all()
            return
        next_event = StageEvent(request, event.stage_index + 1)
        with self._condition:
            self._enqueue(next_event)
            self._condition.notify_all()

    def on_stage_error(self, event: StageEvent, error: BaseException) -> None:
        event.request.fail(error)
        with self._condition:
            self._condition.notify_all()

    # -- lifecycle -------------------------------------------------------------------

    def shutdown(self) -> None:
        with self._condition:
            self._shutdown = True
            self._condition.notify_all()

    @property
    def is_shut_down(self) -> bool:
        return self._shutdown

    def queue_depths(self) -> Dict[str, int]:
        with self._condition:
            depths = {"low": len(self._low), "high": len(self._high)}
            for executor_id, queue in self._reserved_queues.items():
                depths[f"reserved[{executor_id}]"] = len(queue)
            return depths
