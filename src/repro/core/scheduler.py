"""Event-based, late-binding scheduling of stage executions (Section 4.2.2).

The Scheduler never pushes work to a specific executor.  Instead it maintains
a shared pair of queues -- a *low priority* queue for the first stage of newly
submitted requests and a *high priority* queue for stages of requests that are
already in flight -- and executors *pull* the next event when they become
free.  Started pipelines therefore finish (and return their pooled vectors)
before new pipelines are admitted, which is exactly the paper's rationale for
the two queues.

Reservation-based scheduling (Section 4.2.2, "Reservation-based Scheduling")
gives a plan a dedicated executor and a private queue, emulating
container-style isolation while still sharing parameters and physical stages.

**Cross-plan stage-level batching.**  Because plans compiled against the same
Object Store point at the *same* physical stages, events queued by different
requests -- even requests for different model plans -- frequently wait to run
an identical physical stage.  With ``enable_stage_batching`` on, a free
executor pulls a :class:`StageBatch` instead of a single event: the first
runnable event plus every other queued event whose next stage shares its
``physical.full_signature``, up to ``max_stage_batch_size``.  Latency-sensitive
requests always bypass coalescing (they run alone, preserving the
request-response latency profile), and reserved executors only coalesce within
their private queue, so reservation isolation is preserved.  Observed batch
sizes are recorded in :class:`repro.telemetry.batching.StageBatchTelemetry`.

Shutting the scheduler down fails every still-queued request fast (instead of
leaving callers blocked in :meth:`InferenceRequest.wait` until their timeout).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.oven.plan import ModelPlan
from repro.telemetry.batching import StageBatchTelemetry

__all__ = ["InferenceRequest", "StageEvent", "StageBatch", "Scheduler"]


class InferenceRequest:
    """One prediction request travelling through the batch engine."""

    _counter = itertools.count()

    def __init__(self, plan_id: str, plan: ModelPlan, record: Any, latency_sensitive: bool = False):
        self.request_id = next(InferenceRequest._counter)
        self.plan_id = plan_id
        self.plan = plan
        self.record = record
        self.latency_sensitive = latency_sensitive
        #: per-request context of exported stage values
        self.values: Dict[Tuple[str, str], Any] = {}
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._done = threading.Event()

    # -- completion -----------------------------------------------------------

    def complete(self, result: Any) -> None:
        self.result = result
        self.completed_at = time.perf_counter()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.completed_at = time.perf_counter()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request_id} did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:
        return f"InferenceRequest(id={self.request_id}, plan={self.plan_id!r})"


@dataclass
class StageEvent:
    """A schedulable unit: one stage of one in-flight request."""

    request: InferenceRequest
    stage_index: int

    @property
    def is_first(self) -> bool:
        return self.stage_index == 0

    @property
    def is_last(self) -> bool:
        return self.stage_index == len(self.request.plan.stages) - 1

    @property
    def signature(self) -> str:
        """Signature of the physical stage this event will execute."""
        return self.request.plan.stage_signature(self.stage_index)


@dataclass
class StageBatch:
    """A coalesced group of stage events sharing one physical stage.

    Every member's next stage has the same ``physical.full_signature``, so the
    whole batch can be served by a single (possibly vectorized)
    :meth:`~repro.core.oven.physical.PhysicalStage.execute_batch` call.
    """

    events: List[StageEvent]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a StageBatch needs at least one event")

    @property
    def signature(self) -> str:
        return self.events[0].signature

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class Scheduler:
    """Shared queues + reservation bookkeeping; executors pull events from it."""

    def __init__(
        self,
        enable_stage_batching: bool = False,
        max_stage_batch_size: int = 16,
    ) -> None:
        if max_stage_batch_size < 1:
            raise ValueError("max_stage_batch_size must be >= 1")
        self.enable_stage_batching = enable_stage_batching
        self.max_stage_batch_size = max_stage_batch_size
        self.batching = StageBatchTelemetry()
        self._low: Deque[StageEvent] = deque()
        self._high: Deque[StageEvent] = deque()
        #: plan id -> executor id holding the reservation
        self._reservations: Dict[str, int] = {}
        #: executor id -> private queue of events for its reserved plans
        self._reserved_queues: Dict[int, Deque[StageEvent]] = {}
        self._condition = threading.Condition()
        self._shutdown = False
        self.scheduled_events = 0
        self.completed_requests = 0

    # -- reservations -----------------------------------------------------------

    def reserve(self, plan_id: str, executor_id: int) -> None:
        """Dedicate ``executor_id`` to ``plan_id`` (container-like isolation)."""
        with self._condition:
            self._reservations[plan_id] = executor_id
            self._reserved_queues.setdefault(executor_id, deque())

    def reservation_for(self, plan_id: str) -> Optional[int]:
        return self._reservations.get(plan_id)

    def reserved_executor_ids(self) -> List[int]:
        return list(self._reserved_queues)

    # -- submission --------------------------------------------------------------

    def submit(self, request: InferenceRequest) -> InferenceRequest:
        """Enqueue the first stage of a request on the low-priority queue.

        Submissions against a shut-down scheduler fail the request immediately
        rather than queueing work that will never be served.
        """
        event = StageEvent(request, 0)
        with self._condition:
            if self._shutdown:
                shut_down = True
            else:
                shut_down = False
                self._enqueue(event)
                self._condition.notify_all()
        if shut_down:
            request.fail(RuntimeError("scheduler is shut down"))
        return request

    def _enqueue(self, event: StageEvent) -> None:
        self.scheduled_events += 1
        executor_id = self._reservations.get(event.request.plan_id)
        if executor_id is not None:
            self._reserved_queues[executor_id].append(event)
            return
        if event.is_first:
            self._low.append(event)
        else:
            self._high.append(event)

    # -- executor protocol ---------------------------------------------------------

    def next_event(self, executor_id: int, timeout: float = 0.05) -> Optional[StageEvent]:
        """Late binding: a free executor pulls the next runnable event.

        Reserved executors only serve their private queue.  Shared executors
        drain the high-priority queue (in-flight pipelines, which hold pooled
        vectors) before admitting new pipelines from the low-priority queue.
        """
        deadline = time.perf_counter() + timeout
        with self._condition:
            while not self._shutdown:
                event = self._pop_event(executor_id)
                if event is not None:
                    return event
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return None
                self._condition.wait(remaining)
            return None

    def next_batch(self, executor_id: int, timeout: float = 0.05) -> Optional[StageBatch]:
        """Pull the next runnable event plus every coalescible peer.

        The first runnable event is chosen exactly as :meth:`next_event` would;
        when stage batching is enabled and the event is not latency-sensitive,
        every other queued event visible to this executor whose next stage has
        the same physical signature is folded into the batch (up to
        ``max_stage_batch_size``).  Queue order of non-coalesced events is
        preserved.
        """
        deadline = time.perf_counter() + timeout
        with self._condition:
            while not self._shutdown:
                event = self._pop_event(executor_id)
                if event is not None:
                    events = [event]
                    if self.enable_stage_batching and not event.request.latency_sensitive:
                        self._coalesce_into(events, executor_id)
                    self.batching.record(event.signature, len(events))
                    return StageBatch(events)
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return None
                self._condition.wait(remaining)
            return None

    def _pop_event(self, executor_id: int) -> Optional[StageEvent]:
        """Pop the next runnable event for this executor (condition held)."""
        reserved = self._reserved_queues.get(executor_id)
        if reserved is not None:
            if reserved:
                return reserved.popleft()
            return None
        if self._high:
            return self._high.popleft()
        if self._low:
            return self._low.popleft()
        return None

    def _coalesce_into(self, events: List[StageEvent], executor_id: int) -> None:
        """Move same-signature events from this executor's queues into ``events``.

        A reserved executor only coalesces from its private queue (isolation);
        shared executors scan the high-priority queue before the low-priority
        one, mirroring the pull order.  Latency-sensitive events are skipped.
        """
        signature = events[0].signature
        reserved = self._reserved_queues.get(executor_id)
        queues = [reserved] if reserved is not None else [self._high, self._low]
        limit = self.max_stage_batch_size
        for queue in queues:
            if len(events) >= limit:
                break
            matched = False
            remaining: Deque[StageEvent] = deque()
            for event in queue:
                if (
                    len(events) < limit
                    and not event.request.latency_sensitive
                    and event.signature == signature
                ):
                    events.append(event)
                    matched = True
                else:
                    remaining.append(event)
            if matched:
                queue.clear()
                queue.extend(remaining)

    def on_stage_complete(self, event: StageEvent, output: Any) -> None:
        """Advance the request: schedule the next stage or complete it.

        Requeueing into a shut-down scheduler (an executor finishing its
        current stage while the pool is stopping) fails the request fast
        instead of stranding it in a queue nobody will ever drain.
        """
        request = event.request
        if event.is_last:
            request.complete(output)
            with self._condition:
                self.completed_requests += 1
                self._condition.notify_all()
            return
        next_event = StageEvent(request, event.stage_index + 1)
        with self._condition:
            if self._shutdown:
                shut_down = True
            else:
                shut_down = False
                self._enqueue(next_event)
                self._condition.notify_all()
        if shut_down:
            request.fail(RuntimeError("scheduler shut down before request completed"))

    def on_stage_error(self, event: StageEvent, error: BaseException) -> None:
        event.request.fail(error)
        with self._condition:
            self._condition.notify_all()

    # -- lifecycle -------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop serving events and fail every still-queued request fast.

        Without this, a request whose events were queued but never pulled would
        block its caller in :meth:`InferenceRequest.wait` until the timeout.
        """
        with self._condition:
            self._shutdown = True
            abandoned = list(self._low) + list(self._high)
            self._low.clear()
            self._high.clear()
            for queue in self._reserved_queues.values():
                abandoned.extend(queue)
                queue.clear()
            self._condition.notify_all()
        for event in abandoned:
            if not event.request.done:
                event.request.fail(
                    RuntimeError(
                        f"scheduler shut down with request {event.request.request_id} pending"
                    )
                )

    @property
    def is_shut_down(self) -> bool:
        return self._shutdown

    def queue_depths(self) -> Dict[str, int]:
        with self._condition:
            depths = {"low": len(self._low), "high": len(self._high)}
            for executor_id, queue in self._reserved_queues.items():
                depths[f"reserved[{executor_id}]"] = len(queue)
            return depths
