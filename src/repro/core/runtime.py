"""The PRETZEL Runtime: plan catalog, engines, scheduler and accounting.

The Runtime is the on-line half of the system (Section 4.2).  Model plans
produced off-line by Oven/MPC are *registered*: their physical stages go into
a shared catalog (loaded only once when identical), their parameters live in
the Object Store, and vector pools are sized from the plans' statistics.
Prediction requests are served either by the request-response engine (inline
execution, lowest latency) or by the batch engine (stage events scheduled
onto the shared executors).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import observability, profiling
from repro.core.config import PretzelConfig
from repro.core.cost_model import CostModel
from repro.core.engines import RequestResponseEngine
from repro.core.executors import ExecutorPool
from repro.core.flour import FlourContext, FlourProgram, flour_from_pipeline
from repro.core.materialization import SubPlanMaterializer
from repro.core.object_store import ObjectStore, ParameterBacking
from repro.core.oven.compiler import ModelPlanCompiler
from repro.core.oven.optimizer import OvenOptimizer
from repro.core.oven.plan import ModelPlan
from repro.core.scheduler import InferenceRequest, Scheduler
from repro.core.statistics import TransformStats
from repro.core.vector_pool import VectorPool
from repro.mlnet.pipeline import Pipeline

__all__ = ["PretzelRuntime", "RegisteredPlan"]


@dataclass
class RegisteredPlan:
    """Book-keeping for one registered model plan."""

    plan_id: str
    plan: ModelPlan
    registered_seconds: float
    engine: str = "request-response"
    reserved_executor: Optional[int] = None
    predictions: int = 0
    cold: bool = True


class PretzelRuntime:
    """Host many model plans on shared memory and CPU resources."""

    def __init__(
        self,
        config: Optional[PretzelConfig] = None,
        parameter_backing: Optional[ParameterBacking] = None,
    ):
        self.config = config or PretzelConfig()
        #: optional hook mapping parameter buffers onto storage shared across
        #: processes (the serving tier's shared-memory arena); None keeps
        #: every parameter private to this process.
        self.parameter_backing = parameter_backing
        self.object_store = ObjectStore(
            enabled=self.config.enable_object_store,
            materialization_budget_bytes=self.config.materialization_budget_bytes,
            parameter_backing=parameter_backing,
        )
        self.materializer = SubPlanMaterializer(
            self.object_store, enabled=self.config.enable_subplan_materialization
        )
        self.compiler = ModelPlanCompiler(object_store=self.object_store, config=self.config)
        self.optimizer = OvenOptimizer()
        self.cost_model = self._build_cost_model()
        self.scheduler = Scheduler(
            enable_stage_batching=self.config.enable_stage_batching,
            max_stage_batch_size=self.config.max_stage_batch_size,
            stage_batch_policy=self.config.stage_batch_policy,
            shards=self.config.scheduler_shards,
            cost_model=self.cost_model,
        )
        self.executor_pool = ExecutorPool(
            self.scheduler,
            num_executors=self.config.num_executors,
            materializer=self.materializer,
            vector_pooling=self.config.enable_vector_pooling,
            pool_entries=self.config.vector_pool_entries,
            backend_policy=self.cost_model,
        )
        self._inline_pool = VectorPool(
            enabled=self.config.enable_vector_pooling,
            entries_per_class=self.config.vector_pool_entries,
        )
        self._request_response = RequestResponseEngine(
            materializer=self.materializer, pool=self._inline_pool
        )
        self._plans: Dict[str, RegisteredPlan] = {}
        self._stage_plan_count: Dict[str, int] = {}
        self._id_counter = itertools.count()
        self._lock = threading.Lock()
        self._next_reserved_executor = 0
        if self.config.enable_profiling:
            # One process-global sampler shared by every runtime; the first
            # runtime's interval wins (restarting would tear attribution).
            profiling.ensure_started(self.config.profiler_interval_seconds)
        # One process-global tracer too; last configure wins, so a runtime
        # created with tracing off silences earlier runtimes deliberately
        # (mirrors the profiler's session-wide semantics).
        observability.configure(
            enabled=self.config.enable_tracing,
            sample_rate=self.config.trace_sample_rate,
            buffer_size=self.config.trace_buffer_size,
        )
        #: whether this runtime head-samples requests that arrive without a
        #: trace context.  True for a standalone runtime (it *is* the front
        #: door); the serving worker sets it False, because the cluster made
        #: the sampling decision already and an absent wire context means
        #: "not sampled" -- a worker minting its own traces would re-sample
        #: pass-through traffic and double the effective trace volume.
        self.mint_traces = True

    def _build_cost_model(self) -> Optional[CostModel]:
        """The per-stage cost model, or None for the byte-identical default.

        Built when the config opts into either half of it: a non-reference
        ``kernel_backend`` (the executors dispatch through it) or the
        ``"cost-model"`` batch policy (the sizer reads knees from it; the
        backend stays pinned to ``"reference"`` so the execution path is
        unchanged).  Default config -> None -> the executors call the exact
        pre-backend code path.
        """
        backend = self.config.kernel_backend
        if backend == "reference" and self.config.stage_batch_policy != "cost-model":
            return None
        if backend not in ("reference", "cost-model"):
            from repro.operators import backends as backend_registry

            if backend not in backend_registry.all_backend_names():
                raise ValueError(
                    f"unknown kernel_backend {backend!r} "
                    f"(registered: {['reference', 'cost-model'] + backend_registry.all_backend_names()})"
                )
        return CostModel(
            max_batch_size=self.config.max_stage_batch_size,
            probe_interval=self.config.backend_probe_interval,
            pinned=None if backend == "cost-model" else backend,
        )

    # -- registration (off-line -> on-line handoff) -----------------------------

    def register(
        self,
        model: Union[ModelPlan, FlourProgram, Pipeline],
        stats: Optional[Dict[str, TransformStats]] = None,
        engine: str = "request-response",
        reserve: bool = False,
        plan_id: Optional[str] = None,
    ) -> str:
        """Register a model for serving and return its pipeline id.

        ``model`` may be an already-compiled :class:`ModelPlan`, a Flour
        program, or a trained ML.Net pipeline (which is translated to Flour and
        compiled on the fly).  ``reserve=True`` dedicates one executor to this
        plan (reservation-based scheduling).
        """
        if engine not in ("request-response", "batch"):
            raise ValueError(f"unknown engine {engine!r}")
        start = time.perf_counter()
        plan = self._compile_to_plan(model, stats)
        elapsed = time.perf_counter() - start
        with self._lock:
            identifier = plan_id or f"plan-{next(self._id_counter)}-{plan.name}"
            if identifier in self._plans:
                raise ValueError(f"plan id {identifier!r} already registered")
            plan.plan_id = identifier
            registered = RegisteredPlan(
                plan_id=identifier, plan=plan, registered_seconds=elapsed, engine=engine
            )
            self._plans[identifier] = registered
            self._register_stages(plan)
            if reserve:
                registered.reserved_executor = self._reserve_executor(identifier)
        sizes = [stage.physical.max_vector_size for stage in plan.stages]
        self.executor_pool.preallocate(sizes)
        self._inline_pool.preallocate(sizes)
        if self.config.enable_stage_batching:
            # Pay the batch engine's gather-scratch allocations upfront too:
            # a StageBatch of n records leases an n x max_vector_size buffer,
            # and the power-of-two classes double up to the batch-size cap,
            # so one buffer per doubling covers every class a batch can hit.
            batch_sizes = []
            scale = 2
            while scale < self.config.max_stage_batch_size:
                batch_sizes.extend(size * scale for size in sizes)
                scale *= 2
            batch_sizes.extend(size * self.config.max_stage_batch_size for size in sizes)
            self.executor_pool.preallocate(batch_sizes, entries=1)
        return identifier

    def _compile_to_plan(
        self,
        model: Union[ModelPlan, FlourProgram, Pipeline],
        stats: Optional[Dict[str, TransformStats]],
    ) -> ModelPlan:
        if isinstance(model, ModelPlan):
            return model
        if isinstance(model, FlourProgram):
            graph = model.to_transform_graph()
            stage_graph = self.optimizer.optimize(graph)
            return self.compiler.compile(stage_graph)
        if isinstance(model, Pipeline):
            context = FlourContext(object_store=self.object_store, name=model.name)
            program = flour_from_pipeline(model, context=context, stats=stats)
            graph = program.to_transform_graph()
            stage_graph = self.optimizer.optimize(graph)
            return self.compiler.compile(stage_graph)
        raise TypeError(f"cannot register object of type {type(model).__name__}")

    def _register_stages(self, plan: ModelPlan) -> None:
        for stage in plan.stages:
            signature = stage.physical.full_signature
            count = self._stage_plan_count.get(signature, 0) + 1
            self._stage_plan_count[signature] = count
            if count >= 2:
                self.materializer.mark_shared(signature)
            if not stage.physical.supports_batch:
                # Make the per-record escape hatch visible: stages whose
                # operators lack a vectorized kernel show up in
                # stats()["stage_batching"]["loop_fallback_stages"].
                self.scheduler.batching.note_loop_fallback(
                    signature, stage.physical.loop_fallback_operators()
                )

    def _reserve_executor(self, plan_id: str) -> int:
        executor_id = self._next_reserved_executor % len(self.executor_pool.executors)
        self._next_reserved_executor += 1
        self.scheduler.reserve(plan_id, executor_id)
        return executor_id

    def unregister(self, plan_id: str) -> None:
        """Tear a plan down: catalog, stage counts and Object Store holds.

        Mirrors registration exactly: the plan's executor reservation (if
        any) is released back to the shared pool, every stage signature
        loses one plan (the shared physical stage is dropped from the
        compiler's catalog when the last plan using it goes), and every
        operator occurrence is released back to the Object Store -- canonical operators and their
        parameters disappear once no registered plan references them, so the
        runtime's footprint (and any externally backed parameter views, e.g.
        shared-memory arena slabs) are actually let go, not merely hidden.
        Unknown plan ids are a no-op, matching the previous behaviour.
        """
        with self._lock:
            registered = self._plans.pop(plan_id, None)
            if registered is None:
                return
            if registered.reserved_executor is not None:
                # Give the dedicated executor back to the shared pool (its
                # private queue is drained into the shared queues first).
                self.scheduler.unreserve(plan_id)
            for stage in registered.plan.stages:
                signature = stage.physical.full_signature
                if signature in self._stage_plan_count:
                    self._stage_plan_count[signature] -= 1
                    if self._stage_plan_count[signature] <= 0:
                        del self._stage_plan_count[signature]
                        self.compiler.stage_catalog.pop(signature, None)
                        # The physical stage no longer exists: drop its
                        # batching telemetry and adaptive-sizer EMA too, or
                        # plan churn grows them without bound and a
                        # re-registered signature inherits stale state.
                        self.scheduler.forget_signature(signature)
                        if self.cost_model is not None:
                            self.cost_model.forget(signature)
                # One release per operator occurrence: registration interned
                # each stage-graph node once, shared stages included.
                for operator in stage.physical.operators:
                    self.object_store.release_operator(operator)

    # -- lookups -----------------------------------------------------------------

    def plan_ids(self) -> List[str]:
        return list(self._plans)

    def registered(self, plan_id: str) -> RegisteredPlan:
        if plan_id not in self._plans:
            raise KeyError(f"plan {plan_id!r} is not registered")
        return self._plans[plan_id]

    def plan(self, plan_id: str) -> ModelPlan:
        return self.registered(plan_id).plan

    def shared_stage_count(self) -> int:
        """Number of distinct physical stages referenced by >= 2 plans."""
        return sum(1 for count in self._stage_plan_count.values() if count >= 2)

    def unique_stage_count(self) -> int:
        return len(self._stage_plan_count)

    # -- serving -------------------------------------------------------------------

    def predict(self, plan_id: str, record: Any, trace: Any = None) -> Any:
        """Serve one prediction with the request-response engine.

        ``trace`` is a :class:`~repro.observability.tracing.TraceContext`
        propagated from an upstream hop (the serving worker passes the wire
        context here); when absent, this front door head-samples one -- so
        single-process runtimes get the same flight-recorder view as the
        cluster.  The untraced path costs one ``maybe_trace`` call.
        """
        registered = self.registered(plan_id)
        registered.predictions += 1
        registered.cold = False
        if trace is None and self.mint_traces:
            trace = observability.tracer().maybe_trace()
        if trace is None:
            return self._request_response.predict(registered.plan, record)
        started = time.perf_counter()
        try:
            return self._request_response.predict(registered.plan, record, trace=trace)
        finally:
            if trace.owns_root:
                observability.tracer().record(
                    trace.trace_id,
                    "request",
                    time.perf_counter() - started,
                    span_id=trace.parent_span_id,
                    attributes={"plan_id": plan_id, "engine": "request-response"},
                )

    def timed_predict(self, plan_id: str, record: Any) -> Tuple[Any, float]:
        start = time.perf_counter()
        result = self.predict(plan_id, record)
        return result, time.perf_counter() - start

    def predict_batch(
        self,
        plan_id: str,
        records: Sequence[Any],
        latency_sensitive: bool = False,
        timeout: Optional[float] = 60.0,
        trace: Any = None,
    ) -> List[Any]:
        """Serve a batch through the batch engine (scheduler + executors).

        A sampled trace rides on the *first* record's request only: one
        representative trace per batch call keeps the flight recorder from
        flooding while still capturing queueing and coalescing behaviour.
        """
        registered = self.registered(plan_id)
        registered.predictions += len(records)
        registered.cold = False
        if not self.executor_pool.started:
            self.executor_pool.start()
        if trace is None and self.mint_traces:
            trace = observability.tracer().maybe_trace()
        requests = [
            self.scheduler.submit(
                InferenceRequest(
                    plan_id,
                    registered.plan,
                    record,
                    latency_sensitive,
                    trace=trace if index == 0 else None,
                )
            )
            for index, record in enumerate(records)
        ]
        return [request.wait(timeout) for request in requests]

    def submit(
        self,
        plan_id: str,
        record: Any,
        latency_sensitive: bool = False,
        trace: Any = None,
    ) -> InferenceRequest:
        """Asynchronously submit one prediction to the batch engine."""
        registered = self.registered(plan_id)
        registered.predictions += 1
        if not self.executor_pool.started:
            self.executor_pool.start()
        if trace is None and self.mint_traces:
            trace = observability.tracer().maybe_trace()
        return self.scheduler.submit(
            InferenceRequest(plan_id, registered.plan, record, latency_sensitive, trace=trace)
        )

    # -- accounting -------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Resident footprint: shared parameters + per-plan overhead + pools."""
        total = self.config.runtime_overhead_bytes
        if self.config.enable_object_store:
            total += self.object_store.memory_bytes()
        else:
            total += sum(reg.plan.memory_bytes() for reg in self._plans.values())
        total += self.config.per_plan_overhead_bytes * len(self._plans)
        total += self.executor_pool.memory_bytes()
        total += self._inline_pool.memory_bytes()
        return total

    def registration_seconds(self) -> float:
        """Cumulative time spent compiling + registering plans (model loading)."""
        return sum(reg.registered_seconds for reg in self._plans.values())

    def stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "plans": len(self._plans),
            "unique_stages": self.unique_stage_count(),
            "shared_stages": self.shared_stage_count(),
            "memory_bytes": self.memory_bytes(),
            "object_store": self.object_store.stats(),
            "materialization": self.materializer.stats(),
            "scheduler_events": self.scheduler.scheduled_events,
            "completed_requests": self.scheduler.completed_requests,
            "stage_batching": self.scheduler.batching.snapshot(),
            "queue_depths": self.scheduler.queue_depths(),
            "signature_backlog": self.scheduler.signature_depths(),
        }
        if self.config.enable_profiling:
            # Gated so profiling-off runs keep the pre-profiler stats shape.
            stats["profile"] = profiling.snapshot()
        if self.config.enable_tracing:
            # Same gating discipline as the profiler block above.
            stats["tracing"] = observability.tracer().stats()
        if self.cost_model is not None:
            # Gated like profiling/tracing: default (reference, fixed) runs
            # keep the pre-backend stats shape.
            stats["cost_model"] = self.cost_model.snapshot()
        return stats

    # -- lifecycle -----------------------------------------------------------------------

    def shutdown(self) -> None:
        self.executor_pool.shutdown()

    def __enter__(self) -> "PretzelRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
