"""Pooled vector buffers.

PRETZEL pays memory-allocation costs upfront: at runtime initialization each
executor owns a pool of pre-allocated vectors, sized using the maximum vector
sizes recorded in the model plans' statistics, and predictions borrow buffers
from the pool instead of allocating on the data path (Section 4.2.1).  The
"no vector pooling" ablation of Section 5.2.1 simply bypasses the pool and
allocates a fresh buffer for every stage execution.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

__all__ = ["VectorPool"]


def _size_class(size: int) -> int:
    """Round a requested size up to the next power-of-two size class."""
    if size <= 1:
        return 1
    return 1 << (int(size - 1).bit_length())


class VectorPool:
    """A per-executor pool of reusable float64 buffers, bucketed by size class."""

    def __init__(self, enabled: bool = True, entries_per_class: int = 8):
        self.enabled = enabled
        self.entries_per_class = entries_per_class
        self._buckets: Dict[int, List[np.ndarray]] = defaultdict(list)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.returned = 0

    def preallocate(self, sizes: List[int], entries: Optional[int] = None) -> None:
        """Fill the pool for the given sizes (called at plan registration).

        ``entries`` caps how many buffers each size class is filled to
        (default: the pool's ``entries_per_class``); batch-scratch classes
        use 1 -- a stage executes one batch at a time per executor, and the
        classes are large.
        """
        if not self.enabled:
            return
        target = self.entries_per_class if entries is None else min(entries, self.entries_per_class)
        # Compute-then-publish: the numpy allocations (the expensive part --
        # registration-time prefills can be megabytes) happen outside the
        # lock, which is held only to read each bucket's depth and to splice
        # the fresh buffers in.  Racing prefills may overshoot ``target`` by
        # a few buffers per class; acquire/release still bound the pool at
        # ``entries_per_class``, so the overshoot is transient.
        wanted: Dict[int, int] = {}
        with self._lock:
            for size in sizes:
                if size <= 0:
                    continue
                cls = _size_class(size)
                shortfall = target - len(self._buckets[cls])
                if shortfall > 0:
                    wanted[cls] = max(wanted.get(cls, 0), shortfall)
        if not wanted:
            return
        fresh = {
            cls: [np.empty(cls, dtype=np.float64) for _ in range(count)]
            for cls, count in wanted.items()
        }
        with self._lock:
            for cls, buffers in fresh.items():
                self._buckets[cls].extend(buffers)
                self.allocations += len(buffers)

    def acquire(self, size: int) -> np.ndarray:
        """Borrow a buffer of at least ``size`` elements."""
        if size <= 0:
            size = 1
        cls = _size_class(size)
        if self.enabled:
            with self._lock:
                bucket = self._buckets[cls]
                if bucket:
                    self.hits += 1
                    return bucket.pop()
                self.misses += 1
        # Pool disabled or empty: allocate on the data path (the behaviour the
        # paper attributes to the black-box baseline).
        self.allocations += 1
        return np.empty(cls, dtype=np.float64)

    def release(self, buffer: np.ndarray) -> None:
        """Return a borrowed buffer to the pool."""
        if not self.enabled:
            return
        cls = _size_class(int(buffer.shape[0]))
        with self._lock:
            bucket = self._buckets[cls]
            if len(bucket) < self.entries_per_class:
                bucket.append(buffer)
                self.returned += 1

    def memory_bytes(self) -> int:
        with self._lock:
            return sum(
                buf.nbytes for bucket in self._buckets.values() for buf in bucket
            )

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "allocations": self.allocations,
            "returned": self.returned,
            "pooled_bytes": self.memory_bytes(),
        }
