"""The Object Store: shared storage for operator parameters and cached results.

Section 4.1.3: many DAGs have similar structures, so sharing operators' state
(parameters) considerably improves memory footprint and, as a consequence,
the number of predictions served per machine.  Parameters are compared by the
checksum of their serialized form; parameters already present are reused and
the registering plan is rewritten to point at the existing copy.

The store also hosts the LRU byte-budgeted cache used by sub-plan
materialization (Section 4.3).

**Parameter backing.**  A store may be constructed with a *parameter backing*
(:class:`ParameterBacking`) -- the hook the multi-process serving tier uses to
map parameter buffers out of the hosting process.  On registration every new
parameter is offered to the backing via :meth:`ParameterBacking.adopt`, which
may rebind its value to externally shared storage (a
:class:`~repro.serving.shm_store.SharedMemoryArena` slab).  Backed parameters
are excluded from :meth:`ObjectStore.memory_bytes` -- their bytes live in the
shared segment and are accounted exactly once by whoever owns it -- and
reported separately via :meth:`shared_parameter_bytes`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.operators.base import Operator, Parameter

__all__ = ["ObjectStore", "LruByteCache", "ParameterBacking"]


class ParameterBacking:
    """Hook for mapping parameter values onto storage outside this process.

    The default implementation is a no-op (every parameter stays process
    local).  The serving tier's :class:`~repro.serving.shm_store.ArenaClient`
    overrides :meth:`adopt` to rebind numpy-array parameters to read-only
    views of a shared-memory arena, and :meth:`is_shared` so the store can
    account those bytes as mapped-once instead of owned.
    """

    def adopt(self, parameter: Parameter) -> Parameter:
        """Return the parameter to store (possibly rebound to shared storage)."""
        return parameter

    def adopt_operator(self, operator: Operator) -> None:
        """Rebind a new canonical operator's state onto shared storage.

        Called once per operator, right before the store keeps it as the
        canonical instance every plan will execute.  Plan compilation may
        rewrite trained state into new arrays (e.g. the linear push-through
        rule splits a model's weights per concat branch), so attribute-level
        rebinding must happen *here*, on the post-rewrite operator -- not
        only on the raw pipeline the model file carried.
        """

    def is_shared(self, parameter: Parameter) -> bool:
        """True when the parameter's bytes live in shared storage."""
        return False

    def stats(self) -> Dict[str, Any]:
        """Backing-specific counters merged into the store's stats."""
        return {}


class LruByteCache:
    """A byte-budgeted LRU cache (used for materialized sub-plan results)."""

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        if nbytes > self.budget_bytes:
            return
        with self._lock:
            if key in self._entries:
                self._used -= self._entries[key][1]
            self._entries[key] = (value, nbytes)
            self._entries.move_to_end(key)
            self._used += nbytes
            while self._used > self.budget_bytes and self._entries:
                _key, (_value, size) = self._entries.popitem(last=False)
                self._used -= size
                self.evictions += 1

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used = 0


class ObjectStore:
    """Deduplicated storage of operator parameters (and whole operators).

    ``intern_operator`` returns a canonical operator instance for a given
    operator *signature* (operator family + configuration + parameter
    checksums): the first registration stores the instance, later
    registrations of functionally identical operators are rewritten to the
    stored one.  ``intern_parameter`` provides the same service at the
    granularity of a single parameter.

    Dedup hits and misses are counted per granularity (``parameter_hits``/
    ``parameter_misses``, ``operator_hits``/``operator_misses``) so serving
    telemetry can report cache health per runtime.
    """

    def __init__(
        self,
        enabled: bool = True,
        materialization_budget_bytes: int = 32 * 1024 * 1024,
        parameter_backing: Optional[ParameterBacking] = None,
    ):
        self.enabled = enabled
        self.parameter_backing = parameter_backing
        self._parameters: Dict[str, Parameter] = {}
        self._parameter_refcount: Dict[str, int] = {}
        self._operators: Dict[str, Operator] = {}
        self._operator_refcount: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.materialization_cache = LruByteCache(materialization_budget_bytes)
        self.parameter_hits = 0
        self.parameter_misses = 0
        self.operator_hits = 0
        self.operator_misses = 0

    # -- parameters ---------------------------------------------------------

    def intern_parameter(self, parameter: Parameter) -> Parameter:
        """Return the canonical copy of ``parameter`` (storing it if new)."""
        if not self.enabled:
            return parameter
        key = f"{parameter.name}:{parameter.checksum}"
        with self._lock:
            existing = self._parameters.get(key)
            if existing is not None:
                self.parameter_hits += 1
                self._parameter_refcount[key] += 1
                return existing
            self.parameter_misses += 1
            return self._store_parameter(key, parameter)

    def _store_parameter(self, key: str, parameter: Parameter) -> Parameter:
        """Store a new parameter, offering it to the backing first (lock held)."""
        if self.parameter_backing is not None:
            parameter = self.parameter_backing.adopt(parameter)
        self._parameters[key] = parameter
        self._parameter_refcount[key] = 1
        return parameter

    def has_parameter(self, parameter: Parameter) -> bool:
        return f"{parameter.name}:{parameter.checksum}" in self._parameters

    # -- operators ----------------------------------------------------------

    def intern_operator(self, operator: Operator) -> Operator:
        """Return the canonical instance for this operator's trained state.

        With the store disabled every caller keeps its own instance, which is
        exactly the "Pretzel (no ObjStore)" configuration of Figure 8.
        """
        if not self.enabled:
            return operator
        # Compute-then-publish: the signature (which checksums the trained
        # state) and the parameter harvest are the expensive part of an
        # intern and depend only on ``operator`` -- both run before the lock,
        # which is held just for the table lookups/updates.  The hit path
        # wastes one harvest; the lock stops being the registration-storm
        # bottleneck.
        signature = operator.signature()
        with self._lock:
            existing = self._operators.get(signature)
            if existing is not None:
                self._operator_refcount[signature] += 1
                self.operator_hits += 1
                return existing
        parameters = operator.parameters()
        with self._lock:
            # Recheck: another thread may have interned the same trained
            # state while we harvested its parameters.
            existing = self._operators.get(signature)
            if existing is not None:
                self._operator_refcount[signature] += 1
                self.operator_hits += 1
                return existing
            if self.parameter_backing is not None:
                self.parameter_backing.adopt_operator(operator)
            self._operators[signature] = operator
            self._operator_refcount[signature] = 1
            self.operator_misses += 1
            # Register the operator's parameters as well so parameter-level
            # queries (and memory accounting) see them.
            for parameter in parameters:
                key = f"{parameter.name}:{parameter.checksum}"
                if key not in self._parameters:
                    self.parameter_misses += 1
                    self._store_parameter(key, parameter)
                else:
                    self.parameter_hits += 1
                    self._parameter_refcount[key] += 1
            return operator

    def release_operator(self, operator: Operator) -> bool:
        """Undo one :meth:`intern_operator` registration of this operator.

        Decrements the operator's reference count; when the last plan
        referencing this trained state releases it, the canonical instance is
        dropped and each of its parameters loses one reference (a parameter
        disappears only when *its* count reaches zero -- it may be shared by
        other operators or direct :meth:`intern_parameter` callers).  Dropping
        the canonical instance releases the store's hold on any externally
        backed (arena-adopted) views, which is what lets the serving tier's
        plan teardown honor the arena's slab liveness contract.

        Returns True when the canonical operator was actually removed.
        """
        if not self.enabled:
            return False
        signature = operator.signature()
        with self._lock:
            count = self._operator_refcount.get(signature)
            if count is None:
                return False
            if count > 1:
                self._operator_refcount[signature] = count - 1
                return False
            del self._operator_refcount[signature]
            stored = self._operators.pop(signature)
            for parameter in stored.parameters():
                self._release_parameter_locked(f"{parameter.name}:{parameter.checksum}")
            return True

    def _release_parameter_locked(self, key: str) -> None:
        count = self._parameter_refcount.get(key)
        if count is None:
            return
        if count > 1:
            self._parameter_refcount[key] = count - 1
            return
        del self._parameter_refcount[key]
        self._parameters.pop(key, None)

    def operator_refcount(self, operator: Operator) -> int:
        """How many plans registered an operator with this trained state."""
        return self._operator_refcount.get(operator.signature(), 0)

    # -- accounting ---------------------------------------------------------

    def unique_operator_count(self) -> int:
        return len(self._operators)

    def unique_parameter_count(self) -> int:
        return len(self._parameters)

    def parameters(self) -> List[Parameter]:
        """Snapshot of every stored parameter (post plan-compilation state)."""
        with self._lock:
            return list(self._parameters.values())

    def operators(self) -> List[Operator]:
        """Snapshot of every canonical (executing) operator instance."""
        with self._lock:
            return list(self._operators.values())

    def rebind_parameters(self, checksum: str, resolve: Any) -> int:
        """Rebind stored parameters with this checksum via a per-parameter resolver.

        ``resolve(parameter)`` returns the replacement value for that stored
        parameter, or None to leave it untouched.  The per-parameter hook
        matters when parameters sharing a checksum differ in layout
        (reshaped views of the same bytes): each gets a replacement matching
        *its own* shape/dtype instead of one caller-chosen value for all.
        Returns how many stored parameters were rebound.
        """
        swapped = 0
        with self._lock:
            for key, parameter in list(self._parameters.items()):
                if parameter.checksum != checksum:
                    continue
                value = resolve(parameter)
                if value is None:
                    continue
                clone = Parameter.__new__(Parameter)
                clone.name = parameter.name
                clone.value = value
                clone.checksum = parameter.checksum
                clone.nbytes = parameter.nbytes
                self._parameters[key] = clone
                swapped += 1
        return swapped

    def replace_parameter_value(self, checksum: str, value: Any) -> int:
        """Rebind every stored parameter with this checksum onto ``value``.

        Used when a shared slab is reclaimed under a still-registered plan
        (arena budget-pressure eviction): the worker privatizes the bytes
        and the store must stop holding the about-to-be-recycled view.
        Returns how many stored parameters were rebound.
        """
        return self.rebind_parameters(checksum, lambda _parameter: value)

    def _is_shared(self, parameter: Parameter) -> bool:
        backing = self.parameter_backing
        return backing is not None and backing.is_shared(parameter)

    def memory_bytes(self) -> int:
        """Bytes *owned* by this store: local parameters + materialization cache.

        Parameters adopted by the backing live in shared storage mapped by
        potentially many processes; their bytes are reported by
        :meth:`shared_parameter_bytes` and counted once by the arena owner.
        """
        total = sum(
            param.nbytes for param in self._parameters.values() if not self._is_shared(param)
        )
        return total + self.materialization_cache.used_bytes

    def shared_parameter_bytes(self) -> int:
        """Bytes of registered parameters whose storage is externally shared."""
        if self.parameter_backing is None:
            return 0
        return sum(
            param.nbytes for param in self._parameters.values() if self._is_shared(param)
        )

    def stats(self) -> Dict[str, Any]:
        cache = self.materialization_cache
        stats = {
            "enabled": self.enabled,
            "unique_operators": self.unique_operator_count(),
            "unique_parameters": self.unique_parameter_count(),
            "memory_bytes": self.memory_bytes(),
            "shared_parameter_bytes": self.shared_parameter_bytes(),
            "parameter_hits": self.parameter_hits,
            "parameter_misses": self.parameter_misses,
            "operator_hits": self.operator_hits,
            "operator_misses": self.operator_misses,
            "materialization_entries": len(cache),
            "materialization_hits": cache.hits,
            "materialization_misses": cache.misses,
            "materialization_evictions": cache.evictions,
        }
        if self.parameter_backing is not None:
            stats["parameter_backing"] = self.parameter_backing.stats()
        return stats
