"""The Object Store: shared storage for operator parameters and cached results.

Section 4.1.3: many DAGs have similar structures, so sharing operators' state
(parameters) considerably improves memory footprint and, as a consequence,
the number of predictions served per machine.  Parameters are compared by the
checksum of their serialized form; parameters already present are reused and
the registering plan is rewritten to point at the existing copy.

The store also hosts the LRU byte-budgeted cache used by sub-plan
materialization (Section 4.3).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro.operators.base import Operator, Parameter

__all__ = ["ObjectStore", "LruByteCache"]


class LruByteCache:
    """A byte-budgeted LRU cache (used for materialized sub-plan results)."""

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        if nbytes > self.budget_bytes:
            return
        with self._lock:
            if key in self._entries:
                self._used -= self._entries[key][1]
            self._entries[key] = (value, nbytes)
            self._entries.move_to_end(key)
            self._used += nbytes
            while self._used > self.budget_bytes and self._entries:
                _key, (_value, size) = self._entries.popitem(last=False)
                self._used -= size
                self.evictions += 1

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used = 0


class ObjectStore:
    """Deduplicated storage of operator parameters (and whole operators).

    ``intern_operator`` returns a canonical operator instance for a given
    operator *signature* (operator family + configuration + parameter
    checksums): the first registration stores the instance, later
    registrations of functionally identical operators are rewritten to the
    stored one.  ``intern_parameter`` provides the same service at the
    granularity of a single parameter.
    """

    def __init__(self, enabled: bool = True, materialization_budget_bytes: int = 32 * 1024 * 1024):
        self.enabled = enabled
        self._parameters: Dict[str, Parameter] = {}
        self._operators: Dict[str, Operator] = {}
        self._operator_refcount: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.materialization_cache = LruByteCache(materialization_budget_bytes)

    # -- parameters ---------------------------------------------------------

    def intern_parameter(self, parameter: Parameter) -> Parameter:
        """Return the canonical copy of ``parameter`` (storing it if new)."""
        if not self.enabled:
            return parameter
        key = f"{parameter.name}:{parameter.checksum}"
        with self._lock:
            existing = self._parameters.get(key)
            if existing is not None:
                return existing
            self._parameters[key] = parameter
            return parameter

    def has_parameter(self, parameter: Parameter) -> bool:
        return f"{parameter.name}:{parameter.checksum}" in self._parameters

    # -- operators ----------------------------------------------------------

    def intern_operator(self, operator: Operator) -> Operator:
        """Return the canonical instance for this operator's trained state.

        With the store disabled every caller keeps its own instance, which is
        exactly the "Pretzel (no ObjStore)" configuration of Figure 8.
        """
        if not self.enabled:
            return operator
        signature = operator.signature()
        with self._lock:
            existing = self._operators.get(signature)
            if existing is not None:
                self._operator_refcount[signature] += 1
                return existing
            self._operators[signature] = operator
            self._operator_refcount[signature] = 1
            # Register the operator's parameters as well so parameter-level
            # queries (and memory accounting) see them.
            for parameter in operator.parameters():
                key = f"{parameter.name}:{parameter.checksum}"
                self._parameters.setdefault(key, parameter)
            return operator

    def operator_refcount(self, operator: Operator) -> int:
        """How many plans registered an operator with this trained state."""
        return self._operator_refcount.get(operator.signature(), 0)

    # -- accounting ---------------------------------------------------------

    def unique_operator_count(self) -> int:
        return len(self._operators)

    def unique_parameter_count(self) -> int:
        return len(self._parameters)

    def memory_bytes(self) -> int:
        """Bytes held by unique parameters plus the materialization cache."""
        total = sum(param.nbytes for param in self._parameters.values())
        return total + self.materialization_cache.used_bytes

    def stats(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "unique_operators": self.unique_operator_count(),
            "unique_parameters": self.unique_parameter_count(),
            "memory_bytes": self.memory_bytes(),
            "materialization_entries": len(self.materialization_cache),
            "materialization_hits": self.materialization_cache.hits,
            "materialization_misses": self.materialization_cache.misses,
        }
