"""PRETZEL reproduction: white-box machine-learning prediction serving.

The package is organised in layers (see DESIGN.md):

* :mod:`repro.operators` -- the ML operator substrate (featurizers + models),
* :mod:`repro.mlnet` -- the ML.Net-like black-box pipeline library & runtime,
* :mod:`repro.clipper` -- the containerized (Clipper-style) serving baseline,
* :mod:`repro.core` -- PRETZEL itself: Flour, Oven, Object Store, Runtime,
  Scheduler, FrontEnd,
* :mod:`repro.workloads` -- the SA / AC pipeline families and datasets,
* :mod:`repro.simulation` -- virtual-time multi-core serving simulation,
* :mod:`repro.telemetry` -- latency/memory/throughput measurement helpers.
"""

from repro.core import (
    FlourContext,
    FlourProgram,
    ObjectStore,
    PretzelConfig,
    PretzelFrontEnd,
    PretzelRuntime,
    flour_from_pipeline,
)
from repro.mlnet import MLNetRuntime, Pipeline
from repro.clipper import ClipperFrontEnd

__version__ = "0.1.0"

__all__ = [
    "PretzelRuntime",
    "PretzelConfig",
    "PretzelFrontEnd",
    "FlourContext",
    "FlourProgram",
    "flour_from_pipeline",
    "ObjectStore",
    "MLNetRuntime",
    "Pipeline",
    "ClipperFrontEnd",
    "__version__",
]
