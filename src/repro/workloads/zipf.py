"""Skewed (Zipf) request generation for the heavy-load experiments.

Section 5.4 submits requests following a Zipf distribution with alpha = 2:
the number of requests to the i-th most popular model is proportional to
``i ** -alpha``.  The helpers here turn a list of plan ids into such a
request sequence deterministically.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

import numpy as np

__all__ = ["zipf_weights", "zipf_request_sequence"]

T = TypeVar("T")


def zipf_weights(n_items: int, alpha: float = 2.0) -> np.ndarray:
    """Normalized Zipf popularity weights for ``n_items`` ranked items."""
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-float(alpha))
    return weights / weights.sum()


def zipf_request_sequence(
    items: Sequence[T],
    n_requests: int,
    alpha: float = 2.0,
    seed: int = 0,
    shuffle_ranks: bool = True,
) -> List[T]:
    """Draw ``n_requests`` items with Zipfian popularity.

    ``shuffle_ranks`` randomizes which item gets which popularity rank (so the
    "popular" models are not always the first ones registered).
    """
    rng = np.random.default_rng(seed)
    items = list(items)
    if shuffle_ranks:
        order = rng.permutation(len(items))
        ranked = [items[i] for i in order]
    else:
        ranked = items
    weights = zipf_weights(len(ranked), alpha)
    draws = rng.choice(len(ranked), size=n_requests, p=weights)
    return [ranked[i] for i in draws]
