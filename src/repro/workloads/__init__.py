"""Workload generators reproducing the paper's two pipeline families.

The paper evaluates 250 Sentiment Analysis (SA) pipelines and 250 Attendee
Count (AC) pipelines that are internal to Microsoft; we cannot use those, so
this package generates families with the same *sharing structure*:

* SA pipelines share a single Tokenizer/Concat configuration and draw their
  Char/Word n-gram featurizers from a handful of trained dictionary versions
  (Figure 3), while every pipeline owns a unique linear model;
* AC pipelines are ensembles over structured 40-feature records, drawing PCA,
  KMeans, TreeFeaturizer and classifier components from shared pools while
  owning per-pipeline imputation/normalization parameters and final
  predictors -- plenty of parameter sharing, but little opportunity for
  sub-plan materialization, as in the paper.

Synthetic datasets (a Zipfian-vocabulary review corpus and a correlated
tabular event stream) stand in for the Amazon Review dataset and the internal
event records.
"""

from repro.workloads.text_data import ReviewCorpus, generate_reviews
from repro.workloads.events_data import EventDataset, generate_events
from repro.workloads.sentiment import SentimentFamily, build_sentiment_family
from repro.workloads.attendee import AttendeeFamily, build_attendee_family
from repro.workloads.zipf import zipf_weights, zipf_request_sequence

__all__ = [
    "ReviewCorpus",
    "generate_reviews",
    "EventDataset",
    "generate_events",
    "SentimentFamily",
    "build_sentiment_family",
    "AttendeeFamily",
    "build_attendee_family",
    "zipf_weights",
    "zipf_request_sequence",
]
