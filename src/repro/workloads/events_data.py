"""Synthetic structured event records (stand-in for the internal AC dataset).

Each record has 40 numeric features (Table 1: "Structured Text, 40
dimensions") describing an event -- audience size proxies, seasonal signals,
engagement counters -- with a small fraction of missing values.  The label is
the attendee count, generated from a non-linear mixture of the features plus
noise so that tree ensembles have something real to learn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["EventDataset", "generate_events", "FEATURE_NAMES"]

N_FEATURES = 40
FEATURE_NAMES: List[str] = [f"f{index}" for index in range(N_FEATURES)]


@dataclass
class EventDataset:
    """Labelled structured records for the Attendee Count task."""

    records: List[Dict[str, float]]
    labels: List[float]
    seed: int

    def __len__(self) -> int:
        return len(self.records)

    def split(self, train_fraction: float = 0.8) -> Tuple["EventDataset", "EventDataset"]:
        cut = int(len(self.records) * train_fraction)
        return (
            EventDataset(self.records[:cut], self.labels[:cut], self.seed),
            EventDataset(self.records[cut:], self.labels[cut:], self.seed),
        )

    def class_labels(self, n_classes: int = 3) -> List[int]:
        """Bucketize attendee counts into classes (for the classifier stage)."""
        values = np.asarray(self.labels)
        edges = np.quantile(values, np.linspace(0, 1, n_classes + 1)[1:-1])
        return [int(np.searchsorted(edges, value)) for value in values]


def generate_events(
    n_events: int = 400,
    missing_fraction: float = 0.03,
    seed: int = 11,
) -> EventDataset:
    """Generate ``n_events`` records with 40 correlated numeric features."""
    rng = np.random.default_rng(seed)
    # Latent factors create correlations across the 40 observed features.
    latent = rng.normal(size=(n_events, 6))
    mixing = rng.normal(scale=0.8, size=(6, N_FEATURES))
    observed = latent @ mixing + rng.normal(scale=0.4, size=(n_events, N_FEATURES))
    # A few features get distinct scales, as in real telemetry.
    scales = np.concatenate(
        [np.full(10, 1.0), np.full(10, 10.0), np.full(10, 100.0), np.full(10, 0.1)]
    )
    observed = observed * scales + scales
    labels = (
        40.0
        + 12.0 * np.tanh(latent[:, 0])
        + 8.0 * (latent[:, 1] > 0.3)
        + 5.0 * np.abs(latent[:, 2])
        + 3.0 * latent[:, 3] * latent[:, 4]
        + rng.normal(scale=2.0, size=n_events)
    )
    labels = np.clip(labels, 1.0, None)
    records: List[Dict[str, float]] = []
    for row_index in range(n_events):
        record: Dict[str, float] = {}
        for feature_index, name in enumerate(FEATURE_NAMES):
            if rng.random() < missing_fraction:
                record[name] = float("nan")
            else:
                record[name] = float(observed[row_index, feature_index])
        records.append(record)
    return EventDataset(records=records, labels=[float(v) for v in labels], seed=seed)
