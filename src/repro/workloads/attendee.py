"""The Attendee Count (AC) pipeline family.

250 regression pipelines over structured 40-feature event records (Table 1).
Each pipeline follows the ensemble structure the paper describes: after
per-pipeline imputation and normalization, a dimensionality-reduction step
(PCA) runs next to a KMeans clustering and a TreeFeaturizer; their outputs are
concatenated and fed to a multi-class tree classifier, whose class scores the
final predictor turns into an attendee count.

Sharing structure: pipelines are fine-tuned variants of a bounded set of
*configurations* (combinations of trained PCA / KMeans / TreeFeaturizer /
classifier versions drawn from shared pools) -- so parameters are heavily
shared across pipelines, matching the paper's large memory reduction for AC --
while the cheap per-pipeline imputer/normalizer and the final predictor are
unique to each pipeline.  Because the per-pipeline normalization differs, the
values flowing into the shared stages differ between pipelines, so sub-plan
materialization has little to cache for AC (again matching the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.statistics import TransformStats
from repro.mlnet.pipeline import Pipeline
from repro.operators.clustering import KMeans
from repro.operators.decomposition import PCA
from repro.operators.featurizers import (
    ColumnSelector,
    ConcatFeaturizer,
    MinMaxNormalizer,
    MissingValueImputer,
)
from repro.operators.linear import LinearRegressor, PoissonRegressor
from repro.operators.trees import DecisionTree, TreeEnsembleClassifier, TreeFeaturizer
from repro.operators.vectors import DenseVector
from repro.workloads.events_data import FEATURE_NAMES, EventDataset, generate_events
from repro.workloads.sentiment import GeneratedPipeline
from repro.workloads.zipf import zipf_weights

__all__ = ["AttendeeFamily", "build_attendee_family", "ComponentPools", "Configuration"]


@dataclass
class ComponentPools:
    """Shared trained components the AC pipelines draw from."""

    pcas: List[PCA]
    kmeans: List[KMeans]
    tree_featurizers: List[TreeFeaturizer]


@dataclass
class Configuration:
    """One (pca, kmeans, tree featurizer, classifier) combination.

    Real deployments fine-tune a handful of default configurations; every AC
    pipeline is a member of one configuration plus per-pipeline parameters.
    """

    index: int
    pca_version: int
    kmeans_version: int
    tree_version: int
    classifier: TreeEnsembleClassifier
    branch_sizes: List[int]


@dataclass
class AttendeeFamily:
    """The generated AC family plus its shared assets."""

    pipelines: List[GeneratedPipeline]
    dataset: EventDataset
    pools: ComponentPools
    configurations: List[Configuration]
    seed: int

    def __len__(self) -> int:
        return len(self.pipelines)

    def sample_inputs(self, count: int, seed: int = 103) -> List[Dict[str, float]]:
        dataset = generate_events(n_events=count, seed=seed)
        return dataset.records


def _normalized_matrix(dataset: EventDataset) -> np.ndarray:
    """Impute + scale the training matrix once, for fitting pool components."""
    selector = ColumnSelector(FEATURE_NAMES)
    rows = [selector.transform(record) for record in dataset.records]
    imputer = MissingValueImputer().fit(rows)
    imputed = [imputer.transform(row) for row in rows]
    normalizer = MinMaxNormalizer().fit(imputed)
    normalized = [normalizer.transform(row) for row in imputed]
    return np.vstack([vec.to_numpy() for vec in normalized])


def build_attendee_family(
    n_pipelines: int = 250,
    dataset: Optional[EventDataset] = None,
    n_pca_versions: int = 6,
    n_kmeans_versions: int = 5,
    n_tree_featurizer_versions: int = 5,
    n_configurations: int = 20,
    tree_featurizer_trees: int = 10,
    tree_featurizer_depth: int = 6,
    seed: int = 41,
) -> AttendeeFamily:
    """Generate the AC pipeline family.

    ``n_configurations`` bounds how many distinct classifier combinations are
    trained; pipelines are assigned to configurations with a skewed
    (Zipf-like) popularity, mirroring how a few default configurations are
    fine-tuned into many deployed variants.
    """
    rng = np.random.default_rng(seed)
    dataset = dataset or generate_events(n_events=320, seed=seed)
    matrix = _normalized_matrix(dataset)
    rows = [DenseVector(row) for row in matrix]
    labels = np.asarray(dataset.labels)
    class_labels = dataset.class_labels(n_classes=3)

    pools = ComponentPools(
        pcas=[PCA(n_components=4 + 2 * (index % 4)).fit(rows) for index in range(n_pca_versions)],
        kmeans=[
            KMeans(n_clusters=4 + 2 * (index % 4), seed=seed + index, max_iterations=25).fit(rows)
            for index in range(n_kmeans_versions)
        ],
        tree_featurizers=[
            TreeFeaturizer(
                n_trees=tree_featurizer_trees,
                max_depth=tree_featurizer_depth,
                seed=seed + 31 * index,
            ).fit(rows, labels)
            for index in range(n_tree_featurizer_versions)
        ],
    )

    # Pre-compute branch outputs per version once; configuration training and
    # final-predictor fitting reuse them.
    pca_outputs = [[op.transform(row) for row in rows] for op in pools.pcas]
    kmeans_outputs = [[op.transform(row) for row in rows] for op in pools.kmeans]
    tree_outputs = [[op.transform(row) for row in rows] for op in pools.tree_featurizers]

    configurations: List[Configuration] = []
    score_rows_by_config: List[List[DenseVector]] = []
    for config_index in range(n_configurations):
        pca_version = int(rng.integers(0, n_pca_versions))
        kmeans_version = int(rng.integers(0, n_kmeans_versions))
        tree_version = int(rng.integers(0, n_tree_featurizer_versions))
        concat_rows = [
            DenseVector(
                np.concatenate(
                    [
                        pca_outputs[pca_version][i].to_numpy(),
                        kmeans_outputs[kmeans_version][i].to_numpy(),
                        tree_outputs[tree_version][i].to_numpy(),
                    ]
                )
            )
            for i in range(len(rows))
        ]
        classifier = TreeEnsembleClassifier(
            n_classes=3,
            max_depth=3 + config_index % 3,
            max_features=32,
            seed=seed + 7 * config_index,
        )
        classifier.fit(concat_rows, class_labels)
        branch_sizes = [
            pools.pcas[pca_version].output_size() or 0,
            pools.kmeans[kmeans_version].output_size() or 0,
            pools.tree_featurizers[tree_version].output_size() or 0,
        ]
        configurations.append(
            Configuration(
                index=config_index,
                pca_version=pca_version,
                kmeans_version=kmeans_version,
                tree_version=tree_version,
                classifier=classifier,
                branch_sizes=branch_sizes,
            )
        )
        score_rows_by_config.append([classifier.transform(row) for row in concat_rows])

    # Assign pipelines to configurations with skewed popularity.
    config_weights = zipf_weights(n_configurations, alpha=1.2)
    config_assignment = rng.choice(n_configurations, size=n_pipelines, p=config_weights)

    generated: List[GeneratedPipeline] = []
    for index in range(n_pipelines):
        configuration = configurations[int(config_assignment[index])]
        pca = pools.pcas[configuration.pca_version]
        kmeans = pools.kmeans[configuration.kmeans_version]
        tree_featurizer = pools.tree_featurizers[configuration.tree_version]
        classifier = configuration.classifier
        score_rows = score_rows_by_config[configuration.index]

        # Per-pipeline imputer/normalizer trained on a bootstrap subsample, so
        # early-stage parameters (and the values fed to shared components)
        # differ slightly between pipelines.
        sample = rng.integers(0, len(dataset.records), size=max(64, len(dataset.records) // 2))
        selector = ColumnSelector(FEATURE_NAMES)
        sampled_rows = [selector.transform(dataset.records[i]) for i in sample]
        imputer = MissingValueImputer().fit(sampled_rows)
        normalizer = MinMaxNormalizer().fit([imputer.transform(r) for r in sampled_rows])

        # Per-pipeline final predictor over the configuration's class scores.
        final_kind = index % 3
        if final_kind == 0:
            final: object = LinearRegressor(l2=1e-3)
            final.fit(score_rows, labels)
        elif final_kind == 1:
            final = PoissonRegressor(epochs=8, learning_rate=0.05)
            final.fit(score_rows, np.maximum(labels, 0.0))
        else:
            final = DecisionTree(max_depth=3, min_leaf=8, seed=seed + index)
            final.fit(score_rows, labels)

        branch_sizes = configuration.branch_sizes
        pipeline = Pipeline(f"ac-{index:03d}")
        pipeline.add("selector", ColumnSelector(FEATURE_NAMES), ["input"])
        pipeline.add("imputer", imputer, ["selector"])
        pipeline.add("normalizer", normalizer, ["imputer"])
        pipeline.add("pca", pca, ["normalizer"])
        pipeline.add("kmeans", kmeans, ["normalizer"])
        pipeline.add("tree_featurizer", tree_featurizer, ["normalizer"])
        pipeline.add("concat", ConcatFeaturizer(branch_sizes), ["pca", "kmeans", "tree_featurizer"])
        pipeline.add("classifier", classifier, ["concat"])
        pipeline.add("final", final, ["classifier"])

        stats = {
            "selector": TransformStats(
                max_vector_size=len(FEATURE_NAMES), avg_nnz=len(FEATURE_NAMES), density=1.0
            ),
            "normalizer": TransformStats(
                max_vector_size=len(FEATURE_NAMES), avg_nnz=len(FEATURE_NAMES), density=1.0
            ),
            "concat": TransformStats(
                max_vector_size=sum(branch_sizes), avg_nnz=float(sum(branch_sizes)), density=1.0
            ),
            "classifier": TransformStats(max_vector_size=3, avg_nnz=3.0, density=1.0),
            "final": TransformStats(max_vector_size=1, avg_nnz=1.0, density=1.0),
        }
        generated.append(
            GeneratedPipeline(
                name=pipeline.name,
                pipeline=pipeline,
                stats=stats,
                category="AC",
                components={
                    "configuration": configuration.index,
                    "pca": configuration.pca_version,
                    "kmeans": configuration.kmeans_version,
                    "tree_featurizer": configuration.tree_version,
                },
            )
        )
    return AttendeeFamily(
        pipelines=generated,
        dataset=dataset,
        pools=pools,
        configurations=configurations,
        seed=seed,
    )
