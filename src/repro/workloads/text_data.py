"""Synthetic review corpus (stand-in for the Amazon Review dataset).

Reviews are generated from a Zipfian vocabulary mixed with sentiment-bearing
words, so that (a) n-gram dictionaries trained on the corpus have realistic
long-tailed sizes and (b) a linear classifier over n-gram features genuinely
separates positive from negative reviews.  Generation is fully deterministic
given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["ReviewCorpus", "generate_reviews"]

_POSITIVE_WORDS = [
    "great", "excellent", "love", "perfect", "nice", "awesome", "fantastic",
    "wonderful", "best", "amazing", "happy", "recommend", "quality", "solid",
    "beautiful", "comfortable", "fast", "easy", "works", "durable",
]
_NEGATIVE_WORDS = [
    "terrible", "awful", "broke", "bad", "worst", "horrible", "waste",
    "refund", "disappointed", "cheap", "poor", "slow", "useless", "defective",
    "return", "broken", "annoying", "fails", "flimsy", "leaks",
]
_PRODUCT_WORDS = [
    "product", "item", "device", "battery", "screen", "cable", "charger",
    "phone", "speaker", "keyboard", "mouse", "camera", "laptop", "case",
    "headphones", "printer", "router", "tablet", "monitor", "watch",
]


def _neutral_vocabulary(size: int, rng: np.random.Generator) -> List[str]:
    """Deterministic pseudo-words forming the bulk of the vocabulary."""
    consonants = "bcdfghjklmnpqrstvwz"
    vowels = "aeiou"
    words = []
    for _ in range(size):
        length = int(rng.integers(3, 9))
        chars = []
        for position in range(length):
            pool = consonants if position % 2 == 0 else vowels
            chars.append(pool[int(rng.integers(0, len(pool)))])
        words.append("".join(chars))
    return words


@dataclass
class ReviewCorpus:
    """A labelled synthetic review corpus."""

    texts: List[str]
    labels: List[int]
    vocabulary_size: int
    seed: int

    def __len__(self) -> int:
        return len(self.texts)

    def split(self, train_fraction: float = 0.8) -> Tuple["ReviewCorpus", "ReviewCorpus"]:
        cut = int(len(self.texts) * train_fraction)
        return (
            ReviewCorpus(self.texts[:cut], self.labels[:cut], self.vocabulary_size, self.seed),
            ReviewCorpus(self.texts[cut:], self.labels[cut:], self.vocabulary_size, self.seed),
        )


def generate_reviews(
    n_reviews: int = 1000,
    vocabulary_size: int = 4000,
    mean_length: int = 30,
    seed: int = 7,
) -> ReviewCorpus:
    """Generate ``n_reviews`` labelled reviews.

    Word frequencies follow a Zipf distribution over the neutral vocabulary;
    each review mixes in sentiment words consistent with its label so the
    classification task is learnable but not trivial.
    """
    rng = np.random.default_rng(seed)
    vocabulary = _neutral_vocabulary(vocabulary_size, rng)
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    zipf_probabilities = (1.0 / ranks) / np.sum(1.0 / ranks)
    texts: List[str] = []
    labels: List[int] = []
    for index in range(n_reviews):
        label = int(rng.integers(0, 2))
        length = max(5, int(rng.normal(mean_length, mean_length / 4)))
        words: List[str] = []
        sentiment_pool = _POSITIVE_WORDS if label == 1 else _NEGATIVE_WORDS
        opposite_pool = _NEGATIVE_WORDS if label == 1 else _POSITIVE_WORDS
        for _ in range(length):
            draw = rng.random()
            if draw < 0.18:
                words.append(sentiment_pool[int(rng.integers(0, len(sentiment_pool)))])
            elif draw < 0.22:
                words.append(opposite_pool[int(rng.integers(0, len(opposite_pool)))])
            elif draw < 0.32:
                words.append(_PRODUCT_WORDS[int(rng.integers(0, len(_PRODUCT_WORDS)))])
            else:
                words.append(vocabulary[int(rng.choice(vocabulary_size, p=zipf_probabilities))])
        texts.append(" ".join(words))
        labels.append(label)
    return ReviewCorpus(texts=texts, labels=labels, vocabulary_size=vocabulary_size, seed=seed)
