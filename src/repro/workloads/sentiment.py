"""The Sentiment Analysis (SA) pipeline family.

250 production variants of the Figure 1 pipeline: ``Tokenizer -> {CharNgram,
WordNgram} -> Concat -> LogisticRegression``.  The family mirrors the sharing
structure of Figure 3:

* one Tokenizer / Concat configuration shared by every pipeline,
* a handful of Char- and Word-n-gram dictionary *versions* (trained with
  different hyper-parameters), with a popularity distribution in which a few
  versions serve most pipelines and the rest serve only a handful, and
* a unique linear model per pipeline (its weights are the only state that can
  never be shared).

Dictionary sizes are scaled down from the paper's 59-83 MB (roughly 1/64) so
the full family trains and loads on a laptop while preserving the relative
sizes between operators and the sharing ratios between pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.statistics import TransformStats
from repro.mlnet.pipeline import Pipeline
from repro.operators.featurizers import ConcatFeaturizer
from repro.operators.linear import LogisticRegressionClassifier
from repro.operators.text import (
    CharNgramFeaturizer,
    NgramDictionary,
    Tokenizer,
    WordNgramFeaturizer,
)
from repro.workloads.text_data import ReviewCorpus, generate_reviews

__all__ = ["GeneratedPipeline", "SentimentFamily", "build_sentiment_family"]

#: hyper-parameters of the n-gram dictionary versions (Figure 3 shows 6 char
#: and 7 word versions); (ngram_range, max_features)
_CHAR_VERSION_SPECS: List[Tuple[Tuple[int, int], int]] = [
    ((2, 3), 6000),
    ((2, 4), 9000),
    ((3, 4), 7000),
    ((2, 3), 3000),
    ((3, 5), 8000),
    ((2, 5), 12000),
]
_WORD_VERSION_SPECS: List[Tuple[Tuple[int, int], int]] = [
    ((1, 2), 16000),
    ((1, 2), 12000),
    ((1, 1), 3000),
    ((1, 3), 20000),
    ((2, 2), 9000),
    ((1, 2), 7000),
    ((2, 3), 11000),
]
#: how many of the 250 pipelines use each version (mirrors Figure 3's counts)
_CHAR_VERSION_POPULARITY = [85, 86, 46, 8, 18, 7]
_WORD_VERSION_POPULARITY = [86, 85, 46, 9, 9, 8, 7]


@dataclass
class GeneratedPipeline:
    """One member of a generated pipeline family."""

    name: str
    pipeline: Pipeline
    stats: Dict[str, TransformStats]
    category: str
    components: Dict[str, int] = field(default_factory=dict)

    def memory_bytes(self) -> int:
        return self.pipeline.memory_bytes()


@dataclass
class SentimentFamily:
    """The generated SA family plus the assets shared by its members."""

    pipelines: List[GeneratedPipeline]
    corpus: ReviewCorpus
    char_versions: List[CharNgramFeaturizer]
    word_versions: List[WordNgramFeaturizer]
    seed: int

    def __len__(self) -> int:
        return len(self.pipelines)

    def sample_inputs(self, count: int, seed: int = 101) -> List[str]:
        """Fresh review texts to score (not part of the training corpus)."""
        corpus = generate_reviews(n_reviews=count, vocabulary_size=self.corpus.vocabulary_size, seed=seed)
        return corpus.texts

    def operator_sharing_report(self) -> List[Dict[str, object]]:
        """Rows of the Figure 3 reproduction: version, pipelines using it, size."""
        rows: List[Dict[str, object]] = []
        tokenizer_bytes = self.pipelines[0].pipeline.nodes["tokenizer"].operator.memory_bytes()
        concat_bytes = self.pipelines[0].pipeline.nodes["concat"].operator.memory_bytes()
        rows.append({"operator": "Tokenize", "version": 0, "pipelines": len(self.pipelines), "bytes": tokenizer_bytes})
        rows.append({"operator": "Concat", "version": 0, "pipelines": len(self.pipelines), "bytes": concat_bytes})
        for kind, versions in (("CharNgram", self.char_versions), ("WordNgram", self.word_versions)):
            for version_index, featurizer in enumerate(versions):
                users = sum(
                    1
                    for generated in self.pipelines
                    if generated.components.get(kind.lower()) == version_index
                )
                rows.append(
                    {
                        "operator": kind,
                        "version": version_index,
                        "pipelines": users,
                        "bytes": featurizer.memory_bytes(),
                    }
                )
        return rows


def _sentiment_informed_weights(
    char_dict: NgramDictionary,
    word_dict: NgramDictionary,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float]:
    """Cheap, deterministic per-pipeline weights that still encode sentiment.

    Training 250 logistic regressions over tens of thousands of features is
    not what the serving experiments measure, so by default the family
    synthesizes plausible weights: word n-grams containing sentiment words get
    signed weights, everything else gets small noise.  (Pass
    ``train_predictors=True`` to :func:`build_sentiment_family` for real
    training on small families.)
    """
    from repro.workloads.text_data import _NEGATIVE_WORDS, _POSITIVE_WORDS

    positive = set(_POSITIVE_WORDS)
    negative = set(_NEGATIVE_WORDS)
    char_weights = rng.normal(scale=0.01, size=char_dict.size)
    word_weights = rng.normal(scale=0.02, size=word_dict.size)
    for gram, index in word_dict.ngram_to_index.items():
        tokens = set(gram.split(" "))
        if tokens & positive:
            word_weights[index] = abs(rng.normal(loc=0.6, scale=0.15))
        elif tokens & negative:
            word_weights[index] = -abs(rng.normal(loc=0.6, scale=0.15))
    weights = np.concatenate([char_weights, word_weights])
    bias = float(rng.normal(scale=0.05))
    return weights, bias


def _expand_popularity(popularity: Sequence[int], n_pipelines: int, rng: np.random.Generator) -> List[int]:
    """Turn per-version counts into a per-pipeline version assignment."""
    assignment: List[int] = []
    for version_index, count in enumerate(popularity):
        assignment.extend([version_index] * count)
    while len(assignment) < n_pipelines:
        assignment.append(int(rng.integers(0, len(popularity))))
    assignment = assignment[:n_pipelines]
    rng.shuffle(assignment)
    return assignment


def build_sentiment_family(
    n_pipelines: int = 250,
    corpus: Optional[ReviewCorpus] = None,
    n_char_versions: int = 6,
    n_word_versions: int = 7,
    train_predictors: bool = False,
    seed: int = 23,
) -> SentimentFamily:
    """Generate the SA pipeline family.

    ``train_predictors=True`` trains every pipeline's logistic regression for
    real (use only with small families -- it densifies the n-gram features);
    the default synthesizes sentiment-informed weights, which is what the
    serving benchmarks need.
    """
    rng = np.random.default_rng(seed)
    corpus = corpus or generate_reviews(n_reviews=1200, vocabulary_size=4000, seed=seed)
    tokenizer_proto = Tokenizer()
    token_lists = [tokenizer_proto.transform(text) for text in corpus.texts]

    char_versions: List[CharNgramFeaturizer] = []
    for spec_index in range(n_char_versions):
        ngram_range, max_features = _CHAR_VERSION_SPECS[spec_index % len(_CHAR_VERSION_SPECS)]
        featurizer = CharNgramFeaturizer(ngram_range=ngram_range, max_features=max_features)
        featurizer.fit(token_lists)
        char_versions.append(featurizer)
    word_versions: List[WordNgramFeaturizer] = []
    for spec_index in range(n_word_versions):
        ngram_range, max_features = _WORD_VERSION_SPECS[spec_index % len(_WORD_VERSION_SPECS)]
        featurizer = WordNgramFeaturizer(ngram_range=ngram_range, max_features=max_features)
        featurizer.fit(token_lists)
        word_versions.append(featurizer)

    char_assignment = _expand_popularity(
        _CHAR_VERSION_POPULARITY[:n_char_versions], n_pipelines, rng
    )
    word_assignment = _expand_popularity(
        _WORD_VERSION_POPULARITY[:n_word_versions], n_pipelines, rng
    )

    generated: List[GeneratedPipeline] = []
    for index in range(n_pipelines):
        char_index = char_assignment[index]
        word_index = word_assignment[index]
        char_proto = char_versions[char_index]
        word_proto = word_versions[word_index]
        # Fresh operator instances per pipeline (each model file is its own
        # black box); the trained dictionaries are shared objects, so the
        # Object Store will find identical checksums.
        char_op = CharNgramFeaturizer(
            ngram_range=char_proto.ngram_range,
            max_features=char_proto.max_features,
            dictionary=char_proto.dictionary,
        )
        word_op = WordNgramFeaturizer(
            ngram_range=word_proto.ngram_range,
            max_features=word_proto.max_features,
            dictionary=word_proto.dictionary,
        )
        char_size = char_op.output_size() or 0
        word_size = word_op.output_size() or 0
        classifier = LogisticRegressionClassifier()
        pipeline = Pipeline(f"sa-{index:03d}")
        pipeline.add("tokenizer", Tokenizer(), ["input"])
        pipeline.add("char_ngram", char_op, ["tokenizer"])
        pipeline.add("word_ngram", word_op, ["tokenizer"])
        pipeline.add("concat", ConcatFeaturizer([char_size, word_size]), ["char_ngram", "word_ngram"])
        pipeline.add("classifier", classifier, ["concat"])
        if train_predictors:
            pipeline.fit(corpus.texts, corpus.labels)
        else:
            pipeline_rng = np.random.default_rng(seed * 1000 + index)
            weights, bias = _sentiment_informed_weights(
                char_op.dictionary, word_op.dictionary, pipeline_rng
            )
            classifier.weights = weights
            classifier.bias = bias
        stats = {
            "char_ngram": TransformStats(
                max_vector_size=char_size, avg_nnz=80.0, density=80.0 / max(char_size, 1), is_sparse=True
            ),
            "word_ngram": TransformStats(
                max_vector_size=word_size, avg_nnz=40.0, density=40.0 / max(word_size, 1), is_sparse=True
            ),
            "concat": TransformStats(
                max_vector_size=char_size + word_size,
                avg_nnz=120.0,
                density=120.0 / max(char_size + word_size, 1),
                is_sparse=True,
            ),
            "classifier": TransformStats(max_vector_size=1, avg_nnz=1.0, density=1.0),
        }
        generated.append(
            GeneratedPipeline(
                name=pipeline.name,
                pipeline=pipeline,
                stats=stats,
                category="SA",
                components={"charngram": char_index, "wordngram": word_index},
            )
        )
    return SentimentFamily(
        pipelines=generated,
        corpus=corpus,
        char_versions=char_versions,
        word_versions=word_versions,
        seed=seed,
    )
