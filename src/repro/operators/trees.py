"""Tree-based operators: CART trees, forests, tree featurization.

The Attendee Count (AC) pipelines in the paper are ensembles: a
dimensionality-reduction step runs next to a KMeans clustering and a
TreeFeaturizer, and their outputs feed a multi-class tree classifier followed
by a final tree (or forest) that renders the prediction.  These operators
implement that substrate with a plain CART learner.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.operators.base import Annotation, Operator, OperatorKind, Parameter, ValueKind
from repro.operators.batch import ColumnBatch, as_column_batch, batch_matrix
from repro.operators.vectors import DenseVector, SparseVector, as_vector

__all__ = ["DecisionTree", "RandomForest", "TreeEnsembleClassifier", "TreeFeaturizer"]


class _TreeNodes:
    """Flat array representation of a binary decision tree.

    Children indices of ``-1`` mark leaves.  The flat layout keeps the trained
    state in a handful of numpy arrays so parameter checksumming, sharing and
    byte accounting stay simple.
    """

    def __init__(self) -> None:
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []

    def add_node(self, feature: int, threshold: float, value: float) -> int:
        index = len(self.feature)
        self.feature.append(feature)
        self.threshold.append(threshold)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        return index

    def as_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "feature": np.asarray(self.feature, dtype=np.int64),
            "threshold": np.asarray(self.threshold, dtype=np.float64),
            "left": np.asarray(self.left, dtype=np.int64),
            "right": np.asarray(self.right, dtype=np.int64),
            "value": np.asarray(self.value, dtype=np.float64),
        }


def _best_split(
    X: np.ndarray, y: np.ndarray, feature_indices: np.ndarray, min_leaf: int
) -> Optional[Tuple[int, float, np.ndarray]]:
    """Find the variance-minimizing split among candidate features.

    The threshold search is vectorized per feature: all candidate thresholds
    are evaluated with one boolean matrix and two matrix-vector products, so
    fitting the tree ensembles of the AC workload stays fast in pure numpy.
    """
    best_feature = -1
    best_threshold = 0.0
    best_score = np.inf
    n_samples = X.shape[0]
    parent_score = float(np.var(y)) * n_samples
    y_squared = y * y
    for feature in feature_indices:
        column = X[:, feature]
        candidates = np.unique(column)
        if candidates.shape[0] < 2:
            continue
        midpoints = (candidates[:-1] + candidates[1:]) / 2.0
        if midpoints.shape[0] > 16:
            midpoints = np.unique(np.quantile(column, np.linspace(0.05, 0.95, 16)))
        left_mask = column[None, :] <= midpoints[:, None]
        n_left = left_mask.sum(axis=1).astype(np.float64)
        n_right = n_samples - n_left
        valid = (n_left >= min_leaf) & (n_right >= min_leaf)
        if not valid.any():
            continue
        sum_left = left_mask @ y
        sumsq_left = left_mask @ y_squared
        sum_right = y.sum() - sum_left
        sumsq_right = y_squared.sum() - sumsq_left
        with np.errstate(divide="ignore", invalid="ignore"):
            var_left = sumsq_left - sum_left * sum_left / np.maximum(n_left, 1.0)
            var_right = sumsq_right - sum_right * sum_right / np.maximum(n_right, 1.0)
        scores = np.where(valid, var_left + var_right, np.inf)
        index = int(np.argmin(scores))
        if scores[index] < best_score - 1e-12:
            best_score = float(scores[index])
            best_feature = int(feature)
            best_threshold = float(midpoints[index])
    if best_feature < 0 or best_score >= parent_score:
        return None
    return best_feature, best_threshold, X[:, best_feature] <= best_threshold


class DecisionTree(Operator):
    """CART regression tree (also used as a building block for classifiers)."""

    name = "DecisionTree"
    kind = OperatorKind.PREDICTOR
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.SCALAR
    annotations = Annotation.ONE_TO_ONE | Annotation.COMPUTE_BOUND

    def __init__(
        self,
        max_depth: int = 6,
        min_leaf: int = 4,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        self.max_depth = int(max_depth)
        self.min_leaf = int(min_leaf)
        self.max_features = max_features
        self.seed = int(seed)
        self._nodes: Optional[Dict[str, np.ndarray]] = None
        self._n_leaves = 0

    # -- training ---------------------------------------------------------

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        if labels is None:
            raise ValueError("DecisionTree requires labels to fit")
        X = np.vstack([as_vector(r).to_numpy() for r in records])
        y = np.asarray(labels, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        nodes = _TreeNodes()
        self._n_leaves = 0

        def build(sample_idx: np.ndarray, depth: int) -> int:
            node_value = float(np.mean(y[sample_idx]))
            node_id = nodes.add_node(-1, 0.0, node_value)
            if depth >= self.max_depth or sample_idx.shape[0] < 2 * self.min_leaf:
                self._n_leaves += 1
                return node_id
            n_features = X.shape[1]
            if self.max_features is not None and self.max_features < n_features:
                candidates = rng.choice(n_features, size=self.max_features, replace=False)
            else:
                candidates = np.arange(n_features)
            split = _best_split(X[sample_idx], y[sample_idx], candidates, self.min_leaf)
            if split is None:
                self._n_leaves += 1
                return node_id
            feature, threshold, mask = split
            nodes.feature[node_id] = feature
            nodes.threshold[node_id] = threshold
            left_id = build(sample_idx[mask], depth + 1)
            right_id = build(sample_idx[~mask], depth + 1)
            nodes.left[node_id] = left_id
            nodes.right[node_id] = right_id
            return node_id

        build(np.arange(X.shape[0]), 0)
        self._nodes = nodes.as_arrays()
        return self

    # -- inference --------------------------------------------------------

    def _leaf_of(self, features: np.ndarray) -> int:
        assert self._nodes is not None
        node = 0
        feature = self._nodes["feature"]
        threshold = self._nodes["threshold"]
        left = self._nodes["left"]
        right = self._nodes["right"]
        while left[node] != -1:
            if features[feature[node]] <= threshold[node]:
                node = int(left[node])
            else:
                node = int(right[node])
        return node

    def _leaves_of(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized level-order traversal over a whole batch.

        Every record descends one tree level per pass: the records still at
        internal nodes are gathered, their split comparisons run as one numpy
        expression, and they step to their left/right child together.  The
        per-record comparisons are exactly the scalar :meth:`_leaf_of` ones,
        so the resulting leaves (and therefore outputs) are bit-equal.
        """
        assert self._nodes is not None
        feature = self._nodes["feature"]
        threshold = self._nodes["threshold"]
        left = self._nodes["left"]
        right = self._nodes["right"]
        leaves = np.zeros(matrix.shape[0], dtype=np.int64)
        active = np.flatnonzero(left[leaves] != -1)
        while active.size:
            current = leaves[active]
            go_left = matrix[active, feature[current]] <= threshold[current]
            leaves[active] = np.where(go_left, left[current], right[current])
            active = active[left[leaves[active]] != -1]
        return leaves

    supports_batch = True

    def transform(self, value: Any) -> float:
        if self._nodes is None:
            raise RuntimeError("DecisionTree used before fit()")
        features = as_vector(value).to_numpy()
        return float(self._nodes["value"][self._leaf_of(features)])

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Score a whole batch with one level-order array traversal."""
        if self._nodes is None:
            raise RuntimeError("DecisionTree used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_scalars(np.empty(0, dtype=np.float64))
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        return ColumnBatch.from_scalars(self._nodes["value"][self._leaves_of(matrix)])

    def leaf_index(self, value: Any) -> int:
        """Index of the leaf the record falls into (used by TreeFeaturizer)."""
        if self._nodes is None:
            raise RuntimeError("DecisionTree used before fit()")
        return self._leaf_of(as_vector(value).to_numpy())

    # -- bookkeeping ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return 0 if self._nodes is None else int(self._nodes["feature"].shape[0])

    def parameters(self) -> List[Parameter]:
        params = [
            Parameter(
                "tree.config",
                {"max_depth": self.max_depth, "min_leaf": self.min_leaf, "seed": self.seed},
            )
        ]
        if self._nodes is not None:
            params.append(Parameter("tree.nodes", self._nodes))
        return params

    def output_size(self) -> Optional[int]:
        return 1

    def _config(self) -> Dict[str, Any]:
        return {"max_depth": self.max_depth, "min_leaf": self.min_leaf, "seed": self.seed}


class RandomForest(Operator):
    """Bagged ensemble of regression trees (mean aggregation)."""

    name = "RandomForest"
    kind = OperatorKind.PREDICTOR
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.SCALAR
    annotations = Annotation.ONE_TO_ONE | Annotation.COMPUTE_BOUND

    def __init__(
        self,
        n_trees: int = 8,
        max_depth: int = 6,
        min_leaf: int = 4,
        feature_fraction: float = 0.7,
        seed: int = 0,
    ):
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_leaf = int(min_leaf)
        self.feature_fraction = float(feature_fraction)
        self.seed = int(seed)
        self.trees: List[DecisionTree] = []

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        if labels is None:
            raise ValueError("RandomForest requires labels to fit")
        X = [as_vector(r) for r in records]
        y = np.asarray(labels, dtype=np.float64)
        n_samples = len(X)
        n_features = X[0].size if X else 0
        max_features = max(1, int(round(self.feature_fraction * n_features)))
        rng = np.random.default_rng(self.seed)
        self.trees = []
        for tree_index in range(self.n_trees):
            sample = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=max_features,
                seed=self.seed + tree_index,
            )
            tree.fit([X[i] for i in sample], y[sample])
            self.trees.append(tree)
        return self

    supports_batch = True

    def transform(self, value: Any) -> float:
        if not self.trees:
            raise RuntimeError("RandomForest used before fit()")
        return float(np.mean([tree.transform(value) for tree in self.trees]))

    def transform_batch(self, values: Any) -> ColumnBatch:
        """One level-order batch traversal per tree, one mean over the stack."""
        if not self.trees:
            raise RuntimeError("RandomForest used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_scalars(np.empty(0, dtype=np.float64))
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        scores = np.stack(
            [tree._nodes["value"][tree._leaves_of(matrix)] for tree in self.trees]
        )
        return ColumnBatch.from_scalars(np.mean(scores, axis=0))

    def parameters(self) -> List[Parameter]:
        params = [
            Parameter(
                "forest.config",
                {
                    "n_trees": self.n_trees,
                    "max_depth": self.max_depth,
                    "feature_fraction": self.feature_fraction,
                    "seed": self.seed,
                },
            )
        ]
        for index, tree in enumerate(self.trees):
            tree_params = tree.parameters()
            for param in tree_params:
                if param.name == "tree.nodes":
                    params.append(Parameter(f"forest.tree{index}.nodes", param.value))
        return params

    def output_size(self) -> Optional[int]:
        return 1

    def _config(self) -> Dict[str, Any]:
        return {
            "n_trees": self.n_trees,
            "max_depth": self.max_depth,
            "feature_fraction": self.feature_fraction,
        }


class TreeEnsembleClassifier(Operator):
    """Multi-class classifier built from one regression tree per class.

    Outputs the vector of per-class scores (one-vs-rest), matching the
    "multi-class tree-based classifier" stage of the AC pipelines.
    """

    name = "TreeEnsembleClassifier"
    kind = OperatorKind.PREDICTOR
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.COMPUTE_BOUND

    def __init__(
        self,
        n_classes: int = 3,
        max_depth: int = 5,
        min_leaf: int = 4,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        self.n_classes = int(n_classes)
        self.max_depth = int(max_depth)
        self.min_leaf = int(min_leaf)
        self.max_features = max_features
        self.seed = int(seed)
        self.trees: List[DecisionTree] = []

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        if labels is None:
            raise ValueError("TreeEnsembleClassifier requires labels to fit")
        y = np.asarray(labels)
        self.trees = []
        for cls in range(self.n_classes):
            indicator = (y == cls).astype(np.float64)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=self.max_features,
                seed=self.seed + cls,
            )
            tree.fit(records, indicator)
            self.trees.append(tree)
        return self

    supports_batch = True

    def transform(self, value: Any) -> DenseVector:
        if not self.trees:
            raise RuntimeError("TreeEnsembleClassifier used before fit()")
        scores = np.array([tree.transform(value) for tree in self.trees])
        return DenseVector(scores)

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Per-class score columns filled by one batch traversal per tree."""
        if not self.trees:
            raise RuntimeError("TreeEnsembleClassifier used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        scores = np.empty((matrix.shape[0], len(self.trees)), dtype=np.float64)
        for position, tree in enumerate(self.trees):
            scores[:, position] = tree._nodes["value"][tree._leaves_of(matrix)]
        return ColumnBatch.from_matrix(scores)

    def predict_class(self, value: Any) -> int:
        return int(np.argmax(self.transform(value).values))

    def parameters(self) -> List[Parameter]:
        params = [
            Parameter(
                "treeclassifier.config",
                {"n_classes": self.n_classes, "max_depth": self.max_depth, "seed": self.seed},
            )
        ]
        for index, tree in enumerate(self.trees):
            for param in tree.parameters():
                if param.name == "tree.nodes":
                    params.append(Parameter(f"treeclassifier.tree{index}.nodes", param.value))
        return params

    def output_size(self) -> Optional[int]:
        return self.n_classes

    def _config(self) -> Dict[str, Any]:
        return {"n_classes": self.n_classes, "max_depth": self.max_depth}


class TreeFeaturizer(Operator):
    """Encode a record as the one-hot concatenation of per-tree leaf indices.

    This is the classic "gradient-boosted trees as featurizer" trick: the
    position of a record in each tree of a small forest becomes a sparse
    categorical feature for a downstream model.
    """

    name = "TreeFeaturizer"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.COMPUTE_BOUND
    produces_sparse = True

    def __init__(
        self,
        n_trees: int = 4,
        max_depth: int = 4,
        min_leaf: int = 4,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_leaf = int(min_leaf)
        self.max_features = max_features
        self.seed = int(seed)
        self.trees: List[DecisionTree] = []

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        if labels is None:
            raise ValueError("TreeFeaturizer requires labels to fit")
        X = [as_vector(r) for r in records]
        y = np.asarray(labels, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        n_samples = len(X)
        self.trees = []
        for tree_index in range(self.n_trees):
            sample = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=self.max_features,
                seed=self.seed + tree_index,
            )
            tree.fit([X[i] for i in sample], y[sample])
            self.trees.append(tree)
        return self

    supports_batch = True

    def transform(self, value: Any) -> SparseVector:
        if not self.trees:
            raise RuntimeError("TreeFeaturizer used before fit()")
        indices: List[int] = []
        offset = 0
        for tree in self.trees:
            indices.append(offset + tree.leaf_index(value))
            offset += tree.n_nodes
        total = offset
        return SparseVector(
            np.asarray(indices, dtype=np.int64), np.ones(len(indices), dtype=np.float64), total
        )

    def transform_batch(self, values: Any) -> ColumnBatch:
        """All leaf indices for the whole batch from one traversal per tree."""
        if not self.trees:
            raise RuntimeError("TreeFeaturizer used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        leaf_columns = np.empty((matrix.shape[0], len(self.trees)), dtype=np.int64)
        offset = 0
        for position, tree in enumerate(self.trees):
            leaf_columns[:, position] = offset + tree._leaves_of(matrix)
            offset += tree.n_nodes
        ones = np.ones(len(self.trees), dtype=np.float64)
        return ColumnBatch.from_rows(
            [SparseVector(row, ones, offset) for row in leaf_columns]
        )

    def parameters(self) -> List[Parameter]:
        params = [
            Parameter(
                "treefeaturizer.config",
                {"n_trees": self.n_trees, "max_depth": self.max_depth, "seed": self.seed},
            )
        ]
        for index, tree in enumerate(self.trees):
            for param in tree.parameters():
                if param.name == "tree.nodes":
                    params.append(Parameter(f"treefeaturizer.tree{index}.nodes", param.value))
        return params

    def output_size(self) -> Optional[int]:
        return sum(tree.n_nodes for tree in self.trees) if self.trees else None

    def _config(self) -> Dict[str, Any]:
        return {"n_trees": self.n_trees, "max_depth": self.max_depth}
