"""Principal Components Analysis, the dimensionality-reduction step of AC pipelines."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.operators.base import Annotation, Operator, OperatorKind, Parameter, ValueKind
from repro.operators.batch import ColumnBatch, as_column_batch, batch_matrix
from repro.operators.vectors import DenseVector, as_vector

__all__ = ["PCA"]


class PCA(Operator):
    """Project dense vectors onto the top-``n_components`` principal axes."""

    name = "PCA"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.COMPUTE_BOUND | Annotation.VECTORIZABLE

    def __init__(
        self,
        n_components: int = 8,
        mean: Optional[np.ndarray] = None,
        components: Optional[np.ndarray] = None,
    ):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.mean = None if mean is None else np.asarray(mean, dtype=np.float64)
        self.components = None if components is None else np.asarray(components, dtype=np.float64)
        self.explained_variance: Optional[np.ndarray] = None

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        X = np.vstack([as_vector(r).to_numpy() for r in records])
        if X.shape[1] < self.n_components:
            raise ValueError(
                f"cannot extract {self.n_components} components from {X.shape[1]} features"
            )
        self.mean = X.mean(axis=0)
        centered = X - self.mean
        _u, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components = vt[: self.n_components]
        denom = max(X.shape[0] - 1, 1)
        self.explained_variance = (singular_values[: self.n_components] ** 2) / denom
        return self

    supports_batch = True

    def transform(self, value: Any) -> DenseVector:
        if self.mean is None or self.components is None:
            raise RuntimeError("PCA used before fit()")
        features = as_vector(value).to_numpy()
        projected = self.components @ (features - self.mean)
        return DenseVector(projected)

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Project the whole batch with one centered matrix product."""
        if self.mean is None or self.components is None:
            raise RuntimeError("PCA used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        projected = (matrix - self.mean) @ self.components.T
        return ColumnBatch.from_matrix(projected)

    def parameters(self) -> List[Parameter]:
        params = [Parameter("pca.config", {"n_components": self.n_components})]
        if self.mean is not None:
            params.append(Parameter("pca.mean", self.mean))
        if self.components is not None:
            params.append(Parameter("pca.components", self.components))
        return params

    def output_size(self) -> Optional[int]:
        return self.n_components

    def _config(self) -> Dict[str, Any]:
        return {"n_components": self.n_components}
