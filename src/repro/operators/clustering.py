"""KMeans clustering, used as a featurization step by the AC pipelines."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.operators.base import Annotation, Operator, OperatorKind, Parameter, ValueKind
from repro.operators.batch import ColumnBatch, as_column_batch, batch_matrix
from repro.operators.vectors import DenseVector, as_vector

__all__ = ["KMeans"]


class KMeans(Operator):
    """Lloyd's algorithm KMeans; at inference time emits cluster distances.

    The output is the vector of (negated, shifted) distances to each centroid
    rather than just the arg-min cluster id, so downstream models receive a
    smooth feature -- this matches how ML.Net's KMeans featurization is used
    inside ensembles.
    """

    name = "KMeans"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.COMPUTE_BOUND | Annotation.VECTORIZABLE

    def __init__(
        self,
        n_clusters: int = 4,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        seed: int = 0,
        centroids: Optional[np.ndarray] = None,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = int(n_clusters)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.seed = int(seed)
        self.centroids = None if centroids is None else np.asarray(centroids, dtype=np.float64)

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        X = np.vstack([as_vector(r).to_numpy() for r in records])
        n_samples = X.shape[0]
        if n_samples < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} samples to fit {self.n_clusters} clusters"
            )
        rng = np.random.default_rng(self.seed)
        # k-means++ style seeding: first centroid uniform, the rest weighted
        # by squared distance to the closest centroid chosen so far.
        centroids = [X[rng.integers(0, n_samples)]]
        for _ in range(1, self.n_clusters):
            distances = np.min(
                np.stack([np.sum((X - c) ** 2, axis=1) for c in centroids]), axis=0
            )
            total = float(distances.sum())
            if total <= 0.0:
                centroids.append(X[rng.integers(0, n_samples)])
                continue
            probabilities = distances / total
            centroids.append(X[rng.choice(n_samples, p=probabilities)])
        centers = np.vstack(centroids)
        for _ in range(self.max_iterations):
            distances = np.linalg.norm(X[:, None, :] - centers[None, :, :], axis=2)
            assignment = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = X[assignment == cluster]
                if members.shape[0]:
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift < self.tolerance:
                break
        self.centroids = centers
        return self

    supports_batch = True

    def transform(self, value: Any) -> DenseVector:
        if self.centroids is None:
            raise RuntimeError("KMeans used before fit()")
        features = as_vector(value).to_numpy()
        distances = np.linalg.norm(self.centroids - features[None, :], axis=1)
        return DenseVector(distances)

    def transform_batch(self, values: Any) -> ColumnBatch:
        """All records' centroid distances from one broadcast norm."""
        if self.centroids is None:
            raise RuntimeError("KMeans used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        distances = np.linalg.norm(
            self.centroids[None, :, :] - matrix[:, None, :], axis=2
        )
        return ColumnBatch.from_matrix(distances)

    def predict_cluster(self, value: Any) -> int:
        return int(np.argmin(self.transform(value).values))

    def parameters(self) -> List[Parameter]:
        params = [
            Parameter("kmeans.config", {"n_clusters": self.n_clusters, "seed": self.seed})
        ]
        if self.centroids is not None:
            params.append(Parameter("kmeans.centroids", self.centroids))
        return params

    def output_size(self) -> Optional[int]:
        return self.n_clusters

    def _config(self) -> Dict[str, Any]:
        return {"n_clusters": self.n_clusters, "seed": self.seed}
