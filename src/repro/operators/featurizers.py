"""General-purpose featurizers: selection, concatenation, scaling, encoding.

``ConcatFeaturizer`` is the operator PRETZEL's optimizer most wants to remove:
it is an n-to-1 *pipeline breaker* that forces the full feature vector to be
materialized before the model can run (Section 2, "Operator-at-a-time Model").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.operators.base import Annotation, Operator, OperatorKind, Parameter, ValueKind
from repro.operators.batch import ColumnBatch, as_column_batch, batch_matrix
from repro.operators.vectors import DenseVector, SparseVector, Vector, as_vector, concat_vectors

__all__ = [
    "ColumnSelector",
    "ConcatFeaturizer",
    "HashingFeaturizer",
    "L2Normalizer",
    "MinMaxNormalizer",
    "MissingValueImputer",
    "OneHotEncoder",
]


class ColumnSelector(Operator):
    """Select named fields from a structured record and emit a dense vector.

    When a single textual column is selected the raw string is passed through
    unchanged (``output_kind`` = TEXT), matching Flour's ``Select("Text")``.
    """

    name = "ColumnSelector"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.ROW
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND

    def __init__(self, columns: Sequence[str], textual: bool = False):
        if not columns:
            raise ValueError("ColumnSelector needs at least one column")
        if textual and len(columns) != 1:
            raise ValueError("textual selection works on exactly one column")
        self.columns = list(columns)
        self.textual = textual
        self.output_kind = ValueKind.TEXT if textual else ValueKind.VECTOR

    supports_batch = True

    def transform(self, value: Any) -> Any:
        if not isinstance(value, dict):
            raise TypeError(f"ColumnSelector expects a dict record, got {type(value)!r}")
        if self.textual:
            return value.get(self.columns[0], "")
        row = np.array(
            [float(value.get(col, 0.0) if value.get(col) is not None else 0.0) for col in self.columns],
            dtype=np.float64,
        )
        return DenseVector(row)

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Gather the selected fields of every record into one columnar matrix.

        Field extraction from dict records is inherently per-record, but the
        batch leaves here as a single ``(n, columns)`` matrix, so every
        numeric kernel downstream runs columnar.
        """
        batch = as_column_batch(values)
        rows = batch.rows
        if self.textual:
            column = self.columns[0]
            texts = []
            for value in rows:
                if not isinstance(value, dict):
                    raise TypeError(
                        f"ColumnSelector expects a dict record, got {type(value)!r}"
                    )
                texts.append(value.get(column, ""))
            return ColumnBatch.from_rows(texts)
        matrix = np.empty((len(rows), len(self.columns)), dtype=np.float64)
        for index, value in enumerate(rows):
            if not isinstance(value, dict):
                raise TypeError(f"ColumnSelector expects a dict record, got {type(value)!r}")
            for position, column in enumerate(self.columns):
                field = value.get(column, 0.0)
                matrix[index, position] = float(field) if field is not None else 0.0
        return ColumnBatch.from_matrix(matrix)

    def parameters(self) -> List[Parameter]:
        return [Parameter("selector.columns", {"columns": self.columns, "textual": self.textual})]

    def output_size(self) -> Optional[int]:
        return None if self.textual else len(self.columns)

    def _config(self) -> Dict[str, Any]:
        return {"columns": self.columns, "textual": self.textual}


class ConcatFeaturizer(Operator):
    """Concatenate the vectors produced by multiple upstream branches.

    This is an n-to-1 operator: it can only run once *all* of its inputs are
    available, so it breaks stage pipelining.  Following ML.Net's semantics
    (and the cost profile of Figure 5, where Concat is as expensive as the
    n-gram featurizers), the default behaviour materializes the full-width
    combined feature buffer; ``dense_output=False`` keeps the output sparse.
    Oven's ``PushLinearModelThroughConcat`` rule removes the operator -- and
    the buffer -- whenever the downstream model is a linear predictor.
    """

    name = "Concat"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.N_TO_ONE | Annotation.MEMORY_BOUND

    def __init__(self, input_sizes: Optional[Sequence[int]] = None, dense_output: bool = True):
        self.input_sizes = list(input_sizes) if input_sizes is not None else None
        self.dense_output = dense_output

    supports_batch = True

    def transform(self, value: Any) -> Vector:
        if not isinstance(value, (list, tuple)):
            raise TypeError("Concat expects a list of vectors (one per upstream branch)")
        combined = concat_vectors([as_vector(v) for v in value])
        if self.dense_output:
            return combined.to_dense()
        return combined

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Concatenate whole branch columns with one ``hstack`` when dense.

        The engine hands n-ary operators a *multi* column (one
        :class:`ColumnBatch` per upstream branch); when every branch is
        uniformly dense and the output is dense, the combined buffer for the
        whole batch is one horizontal stack.  Sparse branches fall back to the
        per-record kernel, which preserves their sparsity exactly as the
        scalar path does.
        """
        batch = as_column_batch(values)
        parts = batch.parts
        if parts is not None and self.dense_output and parts:
            matrices = [part.dense_matrix() for part in parts]
            if all(matrix is not None for matrix in matrices):
                return ColumnBatch.from_matrix(np.hstack(matrices))
        return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])

    def parameters(self) -> List[Parameter]:
        return [Parameter("concat.config", {"input_sizes": self.input_sizes})]

    def output_size(self) -> Optional[int]:
        if self.input_sizes is None:
            return None
        return int(sum(self.input_sizes))

    def _config(self) -> Dict[str, Any]:
        return {"input_sizes": self.input_sizes}


class HashingFeaturizer(Operator):
    """Feature hashing of token lists into a fixed-width sparse vector."""

    name = "Hashing"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.TOKENS
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND
    produces_sparse = True

    def __init__(self, num_bits: int = 12, seed: int = 314159):
        if not 1 <= num_bits <= 31:
            raise ValueError("num_bits must be in [1, 31]")
        self.num_bits = num_bits
        self.seed = seed
        self._size = 1 << num_bits

    def _hash(self, token: str) -> int:
        value = self.seed
        for char in token:
            value = (value * 1_000_003 + ord(char)) & 0x7FFFFFFF
        return value % self._size

    def transform(self, value: Any) -> SparseVector:
        tokens = value or []
        counts: Dict[int, float] = {}
        for token in tokens:
            index = self._hash(str(token))
            counts[index] = counts.get(index, 0.0) + 1.0
        if not counts:
            return SparseVector(np.empty(0, dtype=np.int64), np.empty(0), self._size)
        indices = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
        return SparseVector(indices, values, self._size)

    def parameters(self) -> List[Parameter]:
        return [Parameter("hashing.config", {"num_bits": self.num_bits, "seed": self.seed})]

    def output_size(self) -> Optional[int]:
        return self._size

    def _config(self) -> Dict[str, Any]:
        return {"num_bits": self.num_bits, "seed": self.seed}


class MissingValueImputer(Operator):
    """Replace NaNs with per-feature means learned at training time."""

    name = "MissingValueImputer"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND

    def __init__(self, fill_values: Optional[np.ndarray] = None):
        self.fill_values = None if fill_values is None else np.asarray(fill_values, dtype=np.float64)

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        matrix = np.vstack([as_vector(r).to_numpy() for r in records])
        means = np.nanmean(matrix, axis=0)
        self.fill_values = np.where(np.isnan(means), 0.0, means)
        return self

    supports_batch = True

    def transform(self, value: Any) -> DenseVector:
        if self.fill_values is None:
            raise RuntimeError("MissingValueImputer used before fit()")
        arr = as_vector(value).to_numpy().copy()
        if arr.shape[0] != self.fill_values.shape[0]:
            raise ValueError(
                f"expected {self.fill_values.shape[0]} features, got {arr.shape[0]}"
            )
        mask = np.isnan(arr)
        if mask.any():
            arr[mask] = self.fill_values[mask]
        return DenseVector(arr)

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Impute the whole batch with one ``where`` over the stacked matrix."""
        if self.fill_values is None:
            raise RuntimeError("MissingValueImputer used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        if matrix.shape[1] != self.fill_values.shape[0]:
            raise ValueError(
                f"expected {self.fill_values.shape[0]} features, got {matrix.shape[1]}"
            )
        return ColumnBatch.from_matrix(
            np.where(np.isnan(matrix), self.fill_values, matrix)
        )

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        if self.fill_values is not None:
            params.append(Parameter("imputer.fill_values", self.fill_values))
        return params

    def output_size(self) -> Optional[int]:
        return None if self.fill_values is None else int(self.fill_values.shape[0])


class MinMaxNormalizer(Operator):
    """Scale each feature into [0, 1] using training minima/maxima."""

    name = "MinMaxNormalizer"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND | Annotation.VECTORIZABLE

    def __init__(self, minima: Optional[np.ndarray] = None, maxima: Optional[np.ndarray] = None):
        self.minima = None if minima is None else np.asarray(minima, dtype=np.float64)
        self.maxima = None if maxima is None else np.asarray(maxima, dtype=np.float64)

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        matrix = np.vstack([as_vector(r).to_numpy() for r in records])
        self.minima = np.nanmin(matrix, axis=0)
        self.maxima = np.nanmax(matrix, axis=0)
        return self

    def transform(self, value: Any) -> DenseVector:
        if self.minima is None or self.maxima is None:
            raise RuntimeError("MinMaxNormalizer used before fit()")
        arr = as_vector(value).to_numpy()
        span = self.maxima - self.minima
        safe_span = np.where(span == 0.0, 1.0, span)
        return DenseVector(np.clip((arr - self.minima) / safe_span, 0.0, 1.0))

    supports_batch = True

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Vectorized scaling: one clip over the stacked batch matrix."""
        if self.minima is None or self.maxima is None:
            raise RuntimeError("MinMaxNormalizer used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch_matrix(batch)
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        span = self.maxima - self.minima
        safe_span = np.where(span == 0.0, 1.0, span)
        scaled = np.clip((matrix - self.minima) / safe_span, 0.0, 1.0)
        return ColumnBatch.from_matrix(scaled)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        if self.minima is not None:
            params.append(Parameter("minmax.minima", self.minima))
        if self.maxima is not None:
            params.append(Parameter("minmax.maxima", self.maxima))
        return params

    def output_size(self) -> Optional[int]:
        return None if self.minima is None else int(self.minima.shape[0])


class L2Normalizer(Operator):
    """Normalize each vector to unit Euclidean norm.

    Although stateless, the L2 norm needs the *whole* vector, so this is
    annotated as an aggregation (n-to-1 over features) and acts as a pipeline
    breaker in Oven's stage builder, matching the paper's example.
    """

    name = "L2Normalizer"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.VECTOR
    annotations = Annotation.N_TO_ONE | Annotation.COMPUTE_BOUND | Annotation.VECTORIZABLE

    def transform(self, value: Any) -> Vector:
        vec = as_vector(value)
        norm = vec.norm2()
        if norm == 0.0:
            return vec
        return vec.scale(1.0 / norm)

    supports_batch = True

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Vectorized normalization for all-dense batches (one norm pass).

        The per-row scale is ``row * (1.0 / norm)`` -- the exact expression
        the scalar kernel evaluates -- so dense outputs stay bit-equal to the
        per-record path.  Sparse rows keep their per-record kernel (and their
        sparsity).
        """
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_rows([])
        matrix = batch.dense_matrix()
        if matrix is None:
            return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])
        norms = np.linalg.norm(matrix, axis=1)
        safe_norms = np.where(norms == 0.0, 1.0, norms)
        return ColumnBatch.from_matrix(matrix * (1.0 / safe_norms)[:, None])

    def parameters(self) -> List[Parameter]:
        return [Parameter("l2norm.config", {"norm": "l2"})]


class OneHotEncoder(Operator):
    """One-hot encode an integer key into a dense indicator vector."""

    name = "OneHotEncoder"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.KEY
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND
    produces_sparse = True

    def __init__(self, cardinality: Optional[int] = None):
        self.cardinality = cardinality

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        self.cardinality = int(max(int(r) for r in records)) + 1
        return self

    def transform(self, value: Any) -> SparseVector:
        if self.cardinality is None:
            raise RuntimeError("OneHotEncoder used before fit()")
        index = int(value)
        if not 0 <= index < self.cardinality:
            # Unknown categories map to the all-zeros vector.
            return SparseVector(np.empty(0, dtype=np.int64), np.empty(0), self.cardinality)
        return SparseVector(np.array([index]), np.array([1.0]), self.cardinality)

    def parameters(self) -> List[Parameter]:
        return [Parameter("onehot.config", {"cardinality": self.cardinality})]

    def output_size(self) -> Optional[int]:
        return self.cardinality

    def _config(self) -> Dict[str, Any]:
        return {"cardinality": self.cardinality}
