"""ColumnBatch: the columnar batch representation operators execute over.

PRETZEL's stage-level batching only pays off when the layers underneath it
are actually vectorized: a batch that travels as a Python list of per-record
objects forces every operator kernel back into a per-record loop.  A
:class:`ColumnBatch` keeps one *column* of the batch -- the value every
record carries at one point of the pipeline -- in struct-of-arrays form
(one numpy array for the whole batch plus dtype/shape metadata) whenever the
values are uniformly numeric, while still round-tripping exactly to and from
the row-major lists the scalar path and the wire format use.

A column is in one of four storage kinds:

``dense``
    Every row is a :class:`~repro.operators.vectors.DenseVector` of one
    width; the storage is a single ``(n_records, width)`` float64 matrix and
    rows are materialized lazily as views into it.
``scalar``
    Every row is a float; the storage is a 1-D float64 array.
``multi``
    The column feeds an n-ary operator (Concat): storage is one
    :class:`ColumnBatch` per upstream branch, and rows materialize as the
    per-record argument lists the scalar contract passes.
``rows``
    Anything else (texts, token lists, sparse vectors, dict records, mixed
    batches): storage is the plain row list -- the loop-fallback
    representation.

``ColumnBatch`` is also a read-only sequence of its rows (``len``, ``in``,
indexing, iteration, equality against plain lists), so operator kernels and
tests that treated batches as lists keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

import numpy as np

from repro.operators.vectors import DenseVector, SparseVector, as_vector, densify

__all__ = ["ColumnBatch", "as_column_batch"]


class ColumnBatch:
    """One column of a record batch, columnar when the values allow it."""

    __slots__ = ("_rows", "_matrix", "_scalars", "_parts", "_scratch", "_length")

    def __init__(self) -> None:  # use the from_* constructors
        self._rows: Optional[List[Any]] = None
        self._matrix: Optional[np.ndarray] = None
        self._scalars: Optional[np.ndarray] = None
        self._parts: Optional[List["ColumnBatch"]] = None
        self._scratch: Optional[np.ndarray] = None
        self._length = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Any]) -> "ColumnBatch":
        """Wrap a row-major list of per-record values (any content)."""
        batch = cls()
        batch._rows = list(rows)
        batch._length = len(batch._rows)
        return batch

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "ColumnBatch":
        """Wrap an ``(n_records, width)`` float64 matrix of dense vectors."""
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"from_matrix needs a 2-D array, got shape {arr.shape}")
        batch = cls()
        batch._matrix = arr
        batch._length = int(arr.shape[0])
        return batch

    @classmethod
    def from_scalars(cls, values: np.ndarray) -> "ColumnBatch":
        """Wrap a 1-D float64 array of per-record scalar outputs."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"from_scalars needs a 1-D array, got shape {arr.shape}")
        batch = cls()
        batch._scalars = arr
        batch._length = int(arr.shape[0])
        return batch

    @classmethod
    def multi(cls, parts: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Combine one column per upstream branch into an n-ary input column."""
        parts = list(parts)
        if not parts:
            raise ValueError("multi needs at least one part")
        lengths = {len(part) for part in parts}
        if len(lengths) != 1:
            raise ValueError(f"multi parts disagree on batch size: {sorted(lengths)}")
        batch = cls()
        batch._parts = parts
        batch._length = len(parts[0])
        return batch

    # -- columnar views ------------------------------------------------------

    def attach_scratch(self, buffer: Optional[np.ndarray]) -> "ColumnBatch":
        """Offer a flat float64 scratch buffer for columnar materialization.

        The engine leases the buffer from the executor's
        :class:`~repro.core.vector_pool.VectorPool` for the duration of one
        stage execution, so stacking this column into a matrix reuses pooled
        memory instead of allocating on the data path.  Matrices written into
        scratch are never cached on the column and never exposed through
        :attr:`rows` (which always returns the original row objects), so no
        reference can outlive the lease.
        """
        self._scratch = buffer
        return self

    def _scratch_matrix(self, n_rows: int, width: int) -> Optional[np.ndarray]:
        """A contiguous ``(n_rows, width)`` view of the scratch buffer, if it fits."""
        if self._scratch is None or width <= 0 or self._scratch.size < n_rows * width:
            return None
        return self._scratch[: n_rows * width].reshape(n_rows, width)

    @property
    def parts(self) -> Optional[List["ColumnBatch"]]:
        """The per-branch columns of an n-ary input column (None otherwise)."""
        return self._parts

    @property
    def width(self) -> Optional[int]:
        """Vector width of a dense column, ``0`` for scalars, None otherwise."""
        if self._matrix is not None:
            return int(self._matrix.shape[1])
        if self._scalars is not None:
            return 0
        return None

    def dense_matrix(self, out: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """The batch as one ``(n_records, width)`` float64 matrix, or None.

        Returns the columnar storage directly when the batch was built from a
        matrix; otherwise the rows are stacked if (and only if) every row is a
        :class:`DenseVector` of one width.  ``out`` optionally provides the
        destination buffer (e.g. pooled scratch from a
        :class:`~repro.core.vector_pool.VectorPool`); a stacked matrix written
        into ``out`` is *not* cached, because pooled buffers are recycled.
        """
        if self._matrix is not None:
            return self._matrix
        rows = self._rows
        if not rows:
            return None
        width = -1
        for row in rows:
            if not isinstance(row, DenseVector):
                return None
            if width < 0:
                width = row.size
            elif row.size != width:
                return None
        if out is None:
            out = self._scratch_matrix(len(rows), width)
        if out is not None and out.shape[0] >= len(rows) and out.shape[1] == width:
            matrix = out[: len(rows)]
            for index, row in enumerate(rows):
                matrix[index] = row.values
            return matrix
        matrix = np.empty((len(rows), width), dtype=np.float64)
        for index, row in enumerate(rows):
            matrix[index] = row.values
        self._matrix = matrix
        return matrix

    def scalar_array(self) -> Optional[np.ndarray]:
        """The batch as one 1-D float64 array, or None when rows are not floats."""
        if self._scalars is not None:
            return self._scalars
        rows = self._rows
        if not rows:
            return None
        for row in rows:
            if type(row) is not float and not isinstance(row, (int, np.floating)):
                return None
            if isinstance(row, bool):
                return None
        self._scalars = np.asarray(rows, dtype=np.float64)
        return self._scalars

    # -- row-major views -----------------------------------------------------

    @property
    def rows(self) -> List[Any]:
        """The batch as the row-major list the scalar contract uses.

        Dense and scalar columns materialize lazily: dense rows are
        :class:`DenseVector` *views* into the columnar matrix (operators treat
        vectors as immutable, so sharing the storage is safe and keeps the
        batch one allocation).
        """
        if self._rows is None:
            if self._matrix is not None:
                self._rows = [DenseVector(row) for row in self._matrix]
            elif self._scalars is not None:
                self._rows = [float(value) for value in self._scalars]
            elif self._parts is not None:
                part_rows = [part.rows for part in self._parts]
                self._rows = [list(values) for values in zip(*part_rows)]
            else:
                self._rows = []
        return self._rows

    def row(self, index: int) -> Any:
        return self.rows[index]

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Any]:
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnBatch):
            return self.rows == other.rows
        if isinstance(other, (list, tuple)):
            return self.rows == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        if self._matrix is not None:
            kind = f"dense[{self._matrix.shape[1]}]"
        elif self._scalars is not None:
            kind = "scalar"
        elif self._parts is not None:
            kind = f"multi[{len(self._parts)}]"
        else:
            kind = "rows"
        return f"ColumnBatch(n={self._length}, kind={kind})"


def as_column_batch(values: Any) -> ColumnBatch:
    """Coerce a row-major sequence (or pass through a ColumnBatch)."""
    if isinstance(values, ColumnBatch):
        return values
    if isinstance(values, np.ndarray) and values.ndim == 2:
        return ColumnBatch.from_matrix(values)
    return ColumnBatch.from_rows(list(values))


def batch_matrix(batch: ColumnBatch, out: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
    """The batch as one ``(n, width)`` float64 matrix, densifying as needed.

    Unlike :meth:`ColumnBatch.dense_matrix` (dense-vector rows only, zero
    copy), this coerces every row the way the scalar kernels do
    (``as_vector(value).to_numpy()``, densifying sparse rows), so numeric
    kernels get a matrix for any vector-like batch.  Returns None when the
    rows are not uniformly vector-like -- the caller then takes its
    per-record fallback, which reports the real error for genuinely bad
    records.
    """
    matrix = batch.dense_matrix(out=out)
    if matrix is not None:
        return matrix
    rows = batch.rows
    if not rows:
        return None
    if all(isinstance(row, SparseVector) for row in rows) and len(
        {row.size for row in rows}
    ) == 1:
        if out is None:
            out = batch._scratch_matrix(len(rows), rows[0].size)
        return densify(rows, out=out)
    arrays: List[np.ndarray] = []
    width = -1
    for value in rows:
        try:
            array = as_vector(value).to_numpy()
        except Exception:
            return None
        if array.ndim != 1:
            return None
        if width < 0:
            width = int(array.shape[0])
        elif array.shape[0] != width:
            return None
        arrays.append(array)
    if out is None:
        out = batch._scratch_matrix(len(arrays), width)
    if out is not None and out.shape[0] >= len(arrays) and out.shape[1] == width:
        matrix = out[: len(arrays)]
    else:
        matrix = np.empty((len(arrays), width), dtype=np.float64)
    for index, array in enumerate(arrays):
        matrix[index] = array
    return matrix
