"""Text featurization operators: tokenization and n-gram extraction.

These are the operators dominating the Sentiment Analysis pipelines in the
paper (Figure 5 shows Char/WordNgram taking two orders of magnitude more time
than the final linear model), and the ones whose dictionaries dominate the
memory footprint (Figure 3 reports 59-83 MB WordNgram dictionaries shared by
dozens of pipelines).
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.operators.base import Annotation, Operator, OperatorKind, Parameter, ValueKind
from repro.operators.batch import ColumnBatch, as_column_batch
from repro.operators.vectors import SparseVector

__all__ = ["Tokenizer", "NgramDictionary", "CharNgramFeaturizer", "WordNgramFeaturizer"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+")


class Tokenizer(Operator):
    """Split input text into lowercase word tokens.

    The tokenizer is stateless (its only parameters are the separators),
    which is why all 250 SA pipelines in Figure 3 share a single instance.
    """

    name = "Tokenizer"
    kind = OperatorKind.FEATURIZER
    input_kind = ValueKind.TEXT
    output_kind = ValueKind.TOKENS
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND

    def __init__(self, lowercase: bool = True, pattern: str = _TOKEN_PATTERN.pattern):
        self.lowercase = lowercase
        self.pattern = pattern
        self._compiled = re.compile(pattern)

    def transform(self, value: Any) -> List[str]:
        if value is None:
            return []
        text = str(value)
        if self.lowercase:
            text = text.lower()
        return self._compiled.findall(text)

    supports_batch = True

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Tokenize a whole batch with one shared regex scan.

        The batch's texts are joined with a NUL sentinel and matched in a
        *single* ``finditer`` pass; match offsets are bucketed back to their
        records with one ``searchsorted`` over the cumulative record
        boundaries.  This is the same shared-assembly idiom the n-gram
        featurizers use: the per-record Python overhead (a method call, a
        findall set-up, a result list) is paid once per batch instead of once
        per record.  The fused scan is bit-equal to the scalar path because
        the default token pattern is a character class that can never match
        the sentinel, so no token spans a record boundary; custom patterns
        (or grouped ones, whose ``findall`` semantics differ) keep the exact
        per-record scan.
        """
        batch = as_column_batch(values)
        rows = batch.rows
        if not rows:
            return ColumnBatch.from_rows([])
        if self.pattern != _TOKEN_PATTERN.pattern or self._compiled.groups:
            return ColumnBatch.from_rows([self.transform(value) for value in rows])
        texts: List[str] = []
        for value in rows:
            text = "" if value is None else str(value)
            if self.lowercase:
                text = text.lower()
            texts.append(text)
        # boundaries[i] = first joined-string offset past record i (its
        # sentinel included), so searchsorted(right) maps offset -> record.
        boundaries = np.cumsum(np.fromiter(
            (len(text) + 1 for text in texts), dtype=np.int64, count=len(texts)
        ))
        tokens: List[str] = []
        positions: List[int] = []
        for match in self._compiled.finditer("\x00".join(texts)):
            tokens.append(match.group())
            positions.append(match.start())
        record_of = np.searchsorted(
            boundaries, np.asarray(positions, dtype=np.int64), side="right"
        )
        counts = np.bincount(record_of, minlength=len(texts))
        outputs: List[List[str]] = []
        position = 0
        for count in counts:
            end = position + int(count)
            outputs.append(tokens[position:end])
            position = end
        return ColumnBatch.from_rows(outputs)

    def parameters(self) -> List[Parameter]:
        return [Parameter("tokenizer.config", {"lowercase": self.lowercase, "pattern": self.pattern})]

    def _config(self) -> Dict[str, Any]:
        return {"lowercase": self.lowercase, "pattern": self.pattern}


class NgramDictionary:
    """A trained n-gram vocabulary mapping n-grams to feature indices.

    The dictionary is the large shareable object: in the paper these reach
    tens of megabytes (about one million entries).  It is deliberately a
    standalone object (not buried inside the featurizer) so the Object Store
    can hold exactly one copy per distinct trained vocabulary.
    """

    def __init__(self, ngram_to_index: Dict[str, int], ngram_range: Tuple[int, int]):
        self.ngram_to_index = ngram_to_index
        self.ngram_range = ngram_range

    @property
    def size(self) -> int:
        return len(self.ngram_to_index)

    @classmethod
    def train(
        cls,
        token_lists: Sequence[Sequence[str]],
        ngram_range: Tuple[int, int],
        max_features: int,
        joiner: str = " ",
    ) -> "NgramDictionary":
        """Build a vocabulary of the ``max_features`` most frequent n-grams."""
        counts: Counter = Counter()
        low, high = ngram_range
        for tokens in token_lists:
            for n in range(low, high + 1):
                if len(tokens) < n:
                    continue
                for start in range(len(tokens) - n + 1):
                    counts[joiner.join(tokens[start : start + n])] += 1
        most_common = counts.most_common(max_features)
        # Sort selected n-grams lexicographically so the mapping is stable
        # regardless of tie-breaking inside Counter.
        vocab = sorted(gram for gram, _count in most_common)
        return cls({gram: idx for idx, gram in enumerate(vocab)}, ngram_range)

    def lookup(self, gram: str) -> Optional[int]:
        return self.ngram_to_index.get(gram)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NgramDictionary)
            and self.ngram_range == other.ngram_range
            and self.ngram_to_index == other.ngram_to_index
        )

    def __repr__(self) -> str:
        return f"NgramDictionary(size={self.size}, range={self.ngram_range})"


class _NgramFeaturizerBase(Operator):
    """Common machinery for char- and word-level n-gram featurizers."""

    kind = OperatorKind.FEATURIZER
    output_kind = ValueKind.VECTOR
    annotations = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND
    produces_sparse = True

    def __init__(
        self,
        ngram_range: Tuple[int, int] = (1, 2),
        max_features: int = 5000,
        dictionary: Optional[NgramDictionary] = None,
        weighting: str = "count",
    ):
        if ngram_range[0] < 1 or ngram_range[1] < ngram_range[0]:
            raise ValueError(f"invalid ngram_range {ngram_range}")
        if weighting not in ("count", "binary", "tf"):
            raise ValueError(f"unknown weighting {weighting!r}")
        self.ngram_range = ngram_range
        self.max_features = max_features
        self.dictionary = dictionary
        self.weighting = weighting

    # -- training ---------------------------------------------------------

    def _units(self, value: Any) -> Sequence[str]:
        """Turn the input value into the sequence of units to n-gram over."""
        raise NotImplementedError

    def _joiner(self) -> str:
        raise NotImplementedError

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        unit_lists = [self._units(record) for record in records]
        self.dictionary = NgramDictionary.train(
            unit_lists, self.ngram_range, self.max_features, joiner=self._joiner()
        )
        return self

    # -- inference --------------------------------------------------------

    def _count_grams(self, value: Any) -> Tuple[Dict[int, float], int]:
        """Count one record's in-vocabulary grams: ``(index -> count, total)``.

        The shared core of the scalar and batch kernels; ``tf`` scaling by
        ``total`` happens in the callers.
        """
        assert self.dictionary is not None
        units = self._units(value)
        lookup = self.dictionary.lookup
        joiner = self._joiner()
        low, high = self.ngram_range
        binary = self.weighting == "binary"
        counts: Dict[int, float] = {}
        total = 0
        for n in range(low, high + 1):
            if len(units) < n:
                continue
            for start in range(len(units) - n + 1):
                index = lookup(joiner.join(units[start : start + n]))
                total += 1
                if index is None:
                    continue
                if binary:
                    counts[index] = 1.0
                else:
                    counts[index] = counts.get(index, 0.0) + 1.0
        return counts, total

    def transform(self, value: Any) -> SparseVector:
        if self.dictionary is None:
            raise RuntimeError(f"{self.name} used before fit(): no dictionary")
        counts, total = self._count_grams(value)
        if self.weighting == "tf" and total > 0:
            counts = {idx: val / total for idx, val in counts.items()}
        if not counts:
            return SparseVector(np.empty(0, dtype=np.int64), np.empty(0), self.dictionary.size)
        indices = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
        return SparseVector(indices, values, self.dictionary.size)

    supports_batch = True

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Featurize a whole batch with one shared vector-assembly pass.

        Gram counting is inherently per-record string work, but the dense
        portion -- turning every record's ``(index, count)`` pairs into
        feature vectors -- is batched: all records' pairs land in two shared
        arrays (``tf`` scaling is one vectorized divide over them) and the
        per-record :class:`SparseVector` outputs are built from slices.
        """
        if self.dictionary is None:
            raise RuntimeError(f"{self.name} used before fit(): no dictionary")
        batch = as_column_batch(values)
        rows = batch.rows
        if not rows:
            return ColumnBatch.from_rows([])
        per_record = [self._count_grams(value) for value in rows]
        lengths = np.fromiter(
            (len(counts) for counts, _total in per_record),
            dtype=np.int64,
            count=len(per_record),
        )
        flat = int(lengths.sum())
        all_indices = np.empty(flat, dtype=np.int64)
        all_values = np.empty(flat, dtype=np.float64)
        position = 0
        for counts, _total in per_record:
            count = len(counts)
            all_indices[position : position + count] = np.fromiter(
                counts.keys(), dtype=np.int64, count=count
            )
            all_values[position : position + count] = np.fromiter(
                counts.values(), dtype=np.float64, count=count
            )
            position += count
        if self.weighting == "tf":
            totals = np.fromiter(
                (total if total > 0 else 1 for _counts, total in per_record),
                dtype=np.float64,
                count=len(per_record),
            )
            all_values = all_values / np.repeat(totals, lengths)
        size = self.dictionary.size
        outputs: List[SparseVector] = []
        position = 0
        for length in lengths:
            end = position + int(length)
            outputs.append(SparseVector(all_indices[position:end], all_values[position:end], size))
            position = end
        return ColumnBatch.from_rows(outputs)

    def parameters(self) -> List[Parameter]:
        params = [
            Parameter(
                f"{self.name.lower()}.config",
                {
                    "ngram_range": list(self.ngram_range),
                    "max_features": self.max_features,
                    "weighting": self.weighting,
                },
            )
        ]
        if self.dictionary is not None:
            params.append(
                Parameter(f"{self.name.lower()}.dictionary", self.dictionary.ngram_to_index)
            )
        return params

    def output_size(self) -> Optional[int]:
        return None if self.dictionary is None else self.dictionary.size

    def _config(self) -> Dict[str, Any]:
        return {
            "ngram_range": list(self.ngram_range),
            "max_features": self.max_features,
            "weighting": self.weighting,
        }


class WordNgramFeaturizer(_NgramFeaturizerBase):
    """Bag of word n-grams over a token list."""

    name = "WordNgram"
    input_kind = ValueKind.TOKENS

    def _units(self, value: Any) -> Sequence[str]:
        if value is None:
            return []
        if isinstance(value, str):
            raise TypeError("WordNgram expects a token list; run Tokenizer first")
        return list(value)

    def _joiner(self) -> str:
        return " "


class CharNgramFeaturizer(_NgramFeaturizerBase):
    """Bag of character n-grams over the concatenated token text."""

    name = "CharNgram"
    input_kind = ValueKind.TOKENS

    def _units(self, value: Any) -> Sequence[str]:
        if value is None:
            return []
        if isinstance(value, str):
            text = value
        else:
            text = " ".join(value)
        return list(text)

    def _joiner(self) -> str:
        return ""
