"""Linear predictors: linear, logistic and Poisson regression.

Linear models are the predictors at the end of the Sentiment Analysis
pipelines.  They matter to PRETZEL for two reasons:

* their weights are per-pipeline (unlike the shared n-gram dictionaries), so
  they are the part of each model plan that cannot be deduplicated; and
* the dot product is commutative/associative over concatenated inputs, which
  lets Oven *push the model through Concat*: the model is split into one
  partial dot product per upstream branch and the Concat buffer disappears.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.operators.base import Annotation, Operator, OperatorKind, Parameter, ValueKind
from repro.operators.batch import ColumnBatch, as_column_batch
from repro.operators.vectors import Vector, as_vector

__all__ = [
    "LinearModel",
    "LinearRegressor",
    "LogisticRegressionClassifier",
    "PoissonRegressor",
    "batch_margins",
]


def _design_matrix(records: Sequence[Any]) -> np.ndarray:
    return np.vstack([as_vector(record).to_numpy() for record in records])


def batch_margins(batch: ColumnBatch, weights: np.ndarray, bias: float) -> np.ndarray:
    """Raw margins ``w . x + b`` for one non-empty column of feature vectors.

    The shared linear batch kernel (used by :class:`LinearModel` and the
    optimizer's split ``PartialLinearScorer``): one matrix product for dense
    batches; sparse inputs keep the per-record sparse dot, because densifying
    a dictionary-wide batch would cost more than it saves.
    """
    matrix = batch.dense_matrix()
    if matrix is not None:
        if matrix.shape[1] != weights.shape[0]:
            raise ValueError(
                f"weight length {weights.shape[0]} != vector size {matrix.shape[1]}"
            )
        return matrix @ weights + bias
    vectors = [
        value if isinstance(value, Vector) else as_vector(value) for value in batch.rows
    ]
    return np.array([vector.dot(weights) + bias for vector in vectors])


class LinearModel(Operator):
    """Shared machinery for models of the form ``link(w . x + b)``."""

    kind = OperatorKind.PREDICTOR
    input_kind = ValueKind.VECTOR
    output_kind = ValueKind.SCALAR
    annotations = (
        Annotation.ONE_TO_ONE
        | Annotation.COMPUTE_BOUND
        | Annotation.COMMUTATIVE
        | Annotation.ASSOCIATIVE
        | Annotation.VECTORIZABLE
    )

    def __init__(
        self,
        weights: Optional[np.ndarray] = None,
        bias: float = 0.0,
        l2: float = 1e-4,
        learning_rate: float = 0.1,
        epochs: int = 20,
        seed: int = 0,
    ):
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        self.bias = float(bias)
        self.l2 = float(l2)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.seed = int(seed)

    # -- link / loss ------------------------------------------------------

    def _link(self, margin: np.ndarray) -> np.ndarray:
        """Map raw margins to predictions."""
        return margin

    def _gradient_scale(self, margin: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """d loss / d margin for the model's canonical loss."""
        return self._link(margin) - labels

    # -- training ---------------------------------------------------------

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        if labels is None:
            raise ValueError(f"{self.name} requires labels to fit")
        X = _design_matrix(records)
        y = np.asarray(labels, dtype=np.float64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("number of records and labels differ")
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = X.shape
        weights = np.zeros(n_features, dtype=np.float64)
        bias = 0.0
        indices = np.arange(n_samples)
        for epoch in range(self.epochs):
            rng.shuffle(indices)
            lr = self.learning_rate / (1.0 + 0.1 * epoch)
            for start in range(0, n_samples, 64):
                batch = indices[start : start + 64]
                margin = X[batch] @ weights + bias
                grad_scale = self._gradient_scale(margin, y[batch])
                grad_w = X[batch].T @ grad_scale / batch.size + self.l2 * weights
                grad_b = float(np.mean(grad_scale))
                weights -= lr * grad_w
                bias -= lr * grad_b
        self.weights = weights
        self.bias = float(bias)
        return self

    # -- inference --------------------------------------------------------

    def decision_value(self, value: Any) -> float:
        """Raw margin ``w . x + b`` for a single record."""
        if self.weights is None:
            raise RuntimeError(f"{self.name} used before fit()")
        vec = value if isinstance(value, Vector) else as_vector(value)
        return vec.dot(self.weights) + self.bias

    def transform(self, value: Any) -> float:
        margin = self.decision_value(value)
        return float(self._link(np.asarray(margin)))

    supports_batch = True

    def transform_batch(self, values: Any) -> ColumnBatch:
        """Vectorized batch scoring: shared margins kernel + one link pass."""
        if self.weights is None:
            raise RuntimeError(f"{self.name} used before fit()")
        batch = as_column_batch(values)
        if not batch:
            return ColumnBatch.from_scalars(np.empty(0, dtype=np.float64))
        return ColumnBatch.from_scalars(
            self._link(batch_margins(batch, self.weights, self.bias))
        )

    # -- model splitting (push-through-Concat) ----------------------------

    def split(self, sizes: Sequence[int]) -> List["LinearModel"]:
        """Split the weight vector into per-branch partial models.

        ``sizes`` are the output sizes of the upstream branches feeding the
        Concat this model consumed.  The first partial model keeps the bias;
        summing the partial margins reproduces the original margin exactly.
        """
        if self.weights is None:
            raise RuntimeError("cannot split an unfitted model")
        if sum(sizes) != self.weights.shape[0]:
            raise ValueError(
                f"branch sizes {list(sizes)} do not sum to weight length {self.weights.shape[0]}"
            )
        parts: List[LinearModel] = []
        offset = 0
        for position, size in enumerate(sizes):
            segment = self.weights[offset : offset + size]
            part = type(self)(weights=segment.copy(), bias=self.bias if position == 0 else 0.0)
            parts.append(part)
            offset += size
        return parts

    # -- bookkeeping ------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        if self.weights is not None:
            params.append(Parameter(f"{self.name.lower()}.weights", self.weights))
            params.append(Parameter(f"{self.name.lower()}.bias", self.bias))
        return params

    def output_size(self) -> Optional[int]:
        return 1

    def _config(self) -> Dict[str, Any]:
        return {"l2": self.l2, "epochs": self.epochs}


class LinearRegressor(LinearModel):
    """Ordinary least-squares style linear regression (identity link)."""

    name = "LinearRegression"

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        if labels is None:
            raise ValueError("LinearRegression requires labels to fit")
        X = _design_matrix(records)
        y = np.asarray(labels, dtype=np.float64)
        n_features = X.shape[1]
        # Closed-form ridge regression: stable and fast for our feature counts.
        augmented = np.hstack([X, np.ones((X.shape[0], 1))])
        gram = augmented.T @ augmented + self.l2 * np.eye(n_features + 1)
        solution = np.linalg.solve(gram, augmented.T @ y)
        self.weights = solution[:-1]
        self.bias = float(solution[-1])
        return self


class LogisticRegressionClassifier(LinearModel):
    """Binary logistic regression returning the positive-class probability."""

    name = "LogisticRegression"

    def _link(self, margin: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(margin, -30.0, 30.0)))

    def predict_label(self, value: Any, threshold: float = 0.5) -> int:
        return int(self.transform(value) >= threshold)


class PoissonRegressor(LinearModel):
    """Poisson regression with a log link, used by count-style AC pipelines."""

    name = "PoissonRegression"

    def _link(self, margin: np.ndarray) -> np.ndarray:
        return np.exp(np.clip(margin, -30.0, 30.0))

    def _gradient_scale(self, margin: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return np.exp(np.clip(margin, -30.0, 30.0)) - labels
