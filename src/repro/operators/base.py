"""Operator abstraction shared by every runtime in the repository.

An :class:`Operator` is a trained transformation: it consumes one value per
record (a string, a token list, a feature vector, ...) and produces one value.
Operators carry

* a *schema* (:class:`ValueKind` of input and output) used by Oven's
  validation rules,
* a set of *annotations* (memory-bound vs compute-bound, 1-to-1 vs n-to-1,
  commutative/associative, ...) used by Oven's stage-building rules, and
* a list of :class:`Parameter` objects -- the trained state that PRETZEL's
  Object Store deduplicates across pipelines.

Training (``fit``) happens once, off-line; serving systems only ever call
``transform``.  This mirrors the paper's observation that, once trained, ML
models behave like any other featurizer.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.operators.batch import ColumnBatch, as_column_batch

__all__ = ["ValueKind", "OperatorKind", "Annotation", "Parameter", "Operator"]


class ValueKind(enum.Enum):
    """The type of a value flowing between operators (ML.Net column types)."""

    TEXT = "text"
    TOKENS = "tokens"
    VECTOR = "vector"
    SCALAR = "scalar"
    KEY = "key"  # categorical key (e.g. predicted class id, cluster id)
    ROW = "row"  # raw structured record (dict of named fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueKind.{self.name}"


class OperatorKind(enum.Enum):
    """Coarse role of an operator inside a pipeline."""

    SOURCE = "source"
    FEATURIZER = "featurizer"
    PREDICTOR = "predictor"


class Annotation(enum.Flag):
    """Static properties Oven uses to group operators into stages.

    The paper (Section 4.1.2) notes that ML.Net's operator set is fixed, so
    manual annotation is sufficient for the optimizer -- no dynamic analysis
    is required.  The same approach is used here.
    """

    NONE = 0
    ONE_TO_ONE = enum.auto()
    N_TO_ONE = enum.auto()  # pipeline breaker: needs all inputs materialized
    MEMORY_BOUND = enum.auto()
    COMPUTE_BOUND = enum.auto()
    COMMUTATIVE = enum.auto()
    ASSOCIATIVE = enum.auto()
    VECTORIZABLE = enum.auto()


def _checksum_of(value: Any) -> str:
    """Stable content checksum used for parameter deduplication."""
    hasher = hashlib.sha256()
    _feed(hasher, value)
    return hasher.hexdigest()


def _feed(hasher: "hashlib._Hash", value: Any) -> None:
    if isinstance(value, np.ndarray):
        hasher.update(b"ndarray")
        hasher.update(str(value.dtype).encode())
        hasher.update(str(value.shape).encode())
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, dict):
        hasher.update(b"dict")
        for key in sorted(value, key=repr):
            hasher.update(repr(key).encode())
            _feed(hasher, value[key])
    elif isinstance(value, (list, tuple)):
        hasher.update(b"seq")
        for item in value:
            _feed(hasher, item)
    elif isinstance(value, (int, float, str, bool)) or value is None:
        hasher.update(repr(value).encode())
    else:
        hasher.update(repr(value).encode())


def _nbytes_of(value: Any) -> int:
    """Approximate in-memory size of a parameter value in bytes."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        # Keys are typically short strings (n-grams); count their UTF-8 bytes
        # plus a small per-entry overhead for the hash-table slot.
        total = 0
        for key, item in value.items():
            total += len(str(key).encode()) + 16
            total += _nbytes_of(item)
        return total
    if isinstance(value, (list, tuple)):
        return sum(_nbytes_of(item) for item in value) + 8 * len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    return 64


#: cache of (value, checksum, nbytes) for large parameter values, keyed by
#: object identity.  Trained dictionaries and weight arrays are shared across
#: many pipeline instances in the workload families, and their checksums are
#: requested every time a pipeline is registered; caching by identity turns
#: repeated registrations from O(parameter bytes) into O(1).  Entries hold a
#: strong reference to the value, so an id can never be reused while its
#: entry is alive (identity check below stays sound).  Values must not be
#: mutated in place after a Parameter has been built from them.
_PARAMETER_CACHE: Dict[int, tuple] = {}
_PARAMETER_CACHE_MIN_BYTES = 4096


class Parameter:
    """A named piece of trained operator state.

    Parameters are the unit of sharing in PRETZEL's Object Store: two
    operators from different pipelines that were trained to identical state
    (same dictionary, same weights) produce parameters with the same checksum
    and are stored only once.
    """

    __slots__ = ("name", "value", "checksum", "nbytes")

    def __init__(self, name: str, value: Any):
        self.name = name
        self.value = value
        cached = _PARAMETER_CACHE.get(id(value))
        if cached is not None and cached[0] is value:
            self.checksum = cached[1]
            self.nbytes = cached[2]
            return
        self.checksum = _checksum_of(value)
        self.nbytes = _nbytes_of(value)
        if isinstance(value, (dict, np.ndarray)) and self.nbytes >= _PARAMETER_CACHE_MIN_BYTES:
            _PARAMETER_CACHE[id(value)] = (value, self.checksum, self.nbytes)

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, {self.nbytes}B, {self.checksum[:8]})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Parameter)
            and self.name == other.name
            and self.checksum == other.checksum
        )

    def __hash__(self) -> int:
        return hash((self.name, self.checksum))


class Operator:
    """Base class for all trained transformations."""

    #: human readable operator family name ("Tokenizer", "CharNgram", ...)
    name: str = "Operator"
    kind: OperatorKind = OperatorKind.FEATURIZER
    input_kind: ValueKind = ValueKind.VECTOR
    output_kind: ValueKind = ValueKind.VECTOR
    annotations: Annotation = Annotation.ONE_TO_ONE | Annotation.MEMORY_BOUND
    #: static hint that the operator's output vectors are typically sparse
    #: (used by Oven's stage labelling when no training statistics exist)
    produces_sparse: bool = False
    #: True when :meth:`transform_batch` is a genuinely vectorized kernel.
    #: The base-class implementation is a per-record loop over
    #: :meth:`transform` -- the explicit escape hatch the engine records as a
    #: loop fallback in its stage-batching telemetry.
    supports_batch: bool = False

    def fit(self, records: Sequence[Any], labels: Optional[Sequence[float]] = None) -> "Operator":
        """Estimate parameters from training data.  Returns ``self``."""
        return self

    def transform(self, value: Any) -> Any:
        """Transform a single record's value.

        The batch kernel is the primary contract; the base implementation is
        the derived batch-of-1 wrapper around :meth:`transform_batch`.  Most
        operators override it with a scalar fast path (the request-response
        engine executes one record at a time and must not pay batch set-up).
        """
        if type(self).transform_batch is Operator.transform_batch:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither transform nor transform_batch"
            )
        return self.transform_batch(ColumnBatch.from_rows([value])).row(0)

    def transform_batch(self, values: Union[ColumnBatch, Sequence[Any]]) -> ColumnBatch:
        """Transform a whole batch; the primary kernel of the contract.

        Accepts (and returns) a :class:`~repro.operators.batch.ColumnBatch`;
        plain sequences are coerced, so callers outside the engine can still
        pass lists.  The base implementation is the ``supports_batch=False``
        escape hatch: a per-record loop over :meth:`transform`.  Operators
        with vectorizable kernels override it with a columnar numpy path and
        declare ``supports_batch = True``.
        """
        batch = as_column_batch(values)
        return ColumnBatch.from_rows([self.transform(value) for value in batch.rows])

    def parameters(self) -> List[Parameter]:
        """Trained state as a list of shareable :class:`Parameter` objects."""
        return []

    def output_size(self) -> Optional[int]:
        """Dimensionality of the output vector, if the output is a vector."""
        return None

    # -- bookkeeping ------------------------------------------------------

    def memory_bytes(self) -> int:
        """Total parameter footprint of this operator instance."""
        return sum(param.nbytes for param in self.parameters())

    def signature(self) -> str:
        """Checksum identifying the operator family plus all of its state.

        Two operators with equal signatures are functionally interchangeable;
        PRETZEL uses this to share physical stages and materialized sub-plan
        results between pipelines.
        """
        hasher = hashlib.sha256()
        hasher.update(self.name.encode())
        for param in self.parameters():
            hasher.update(param.name.encode())
            hasher.update(param.checksum.encode())
        hasher.update(repr(self._config()).encode())
        return hasher.hexdigest()

    def _config(self) -> Dict[str, Any]:
        """Hyper-parameters that affect behaviour but are not trained state."""
        return {}

    def describe(self) -> Dict[str, Any]:
        """Structured description used by model files and reporting."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "input": self.input_kind.value,
            "output": self.output_kind.value,
            "config": self._config(),
            "memory_bytes": self.memory_bytes(),
        }

    def is_pipeline_breaker(self) -> bool:
        """True when this operator needs all inputs materialized (n-to-1)."""
        return bool(self.annotations & Annotation.N_TO_ONE)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def iter_parameters(operators: Iterable[Operator]) -> Iterable[Parameter]:
    """Yield every parameter of every operator (duplicates included)."""
    for operator in operators:
        yield from operator.parameters()
