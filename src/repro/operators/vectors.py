"""Dense and sparse feature vectors.

ML.Net operators exchange immutable data vectors; PRETZEL additionally pools
and reuses vector buffers across predictions.  This module provides the two
concrete vector representations used throughout the repository together with
the small set of kernels (dot products, concatenation, scaling) the operators
need.  Vectors know their own memory footprint so the telemetry layer can
account for buffers precisely.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

__all__ = [
    "Vector",
    "DenseVector",
    "SparseVector",
    "concat_vectors",
    "as_vector",
    "densify",
]


class Vector:
    """Abstract feature vector.

    Concrete subclasses are :class:`DenseVector` and :class:`SparseVector`.
    Vectors are logically immutable: operators produce new vectors rather than
    mutating their inputs, mirroring ML.Net's immutable ``VBuffer`` semantics.
    """

    __slots__ = ()

    @property
    def size(self) -> int:
        """Logical dimensionality of the vector."""
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the backing buffers in bytes."""
        raise NotImplementedError

    def to_dense(self) -> "DenseVector":
        raise NotImplementedError

    def to_numpy(self) -> np.ndarray:
        raise NotImplementedError

    def dot(self, weights: np.ndarray) -> float:
        """Dot product against a dense weight array of length ``size``."""
        raise NotImplementedError

    def norm2(self) -> float:
        """Euclidean norm."""
        raise NotImplementedError

    def scale(self, factor: float) -> "Vector":
        """Return a new vector scaled by ``factor``."""
        raise NotImplementedError

    def nnz(self) -> int:
        """Number of explicitly stored (possibly non-zero) entries."""
        raise NotImplementedError


class DenseVector(Vector):
    """A dense vector backed by a 1-D ``float64`` numpy array."""

    __slots__ = ("values",)

    def __init__(self, values: Union[np.ndarray, Sequence[float]]):
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"DenseVector requires a 1-D array, got shape {arr.shape}")
        self.values = arr

    @property
    def size(self) -> int:
        return int(self.values.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)

    def to_dense(self) -> "DenseVector":
        return self

    def to_numpy(self) -> np.ndarray:
        return self.values

    def dot(self, weights: np.ndarray) -> float:
        if weights.shape[0] != self.size:
            raise ValueError(
                f"weight length {weights.shape[0]} != vector size {self.size}"
            )
        return float(np.dot(self.values, weights))

    def norm2(self) -> float:
        return float(np.linalg.norm(self.values))

    def scale(self, factor: float) -> "DenseVector":
        return DenseVector(self.values * factor)

    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"DenseVector(size={self.size})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DenseVector)
            and self.size == other.size
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:  # pragma: no cover - vectors are rarely hashed
        return hash(self.values.tobytes())


class SparseVector(Vector):
    """A sparse vector stored as parallel ``(indices, values)`` arrays.

    Indices are sorted and unique; this invariant is established at
    construction time so downstream kernels can rely on it.
    """

    __slots__ = ("indices", "values", "_size")

    def __init__(
        self,
        indices: Union[np.ndarray, Sequence[int]],
        values: Union[np.ndarray, Sequence[float]],
        size: int,
    ):
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=np.float64)
        if idx.shape != val.shape:
            raise ValueError(
                f"indices shape {idx.shape} and values shape {val.shape} differ"
            )
        if idx.ndim != 1:
            raise ValueError("SparseVector requires 1-D index/value arrays")
        if size < 0:
            raise ValueError("size must be non-negative")
        if idx.size:
            if int(idx.min()) < 0 or int(idx.max()) >= size:
                raise ValueError("indices out of bounds for declared size")
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            val = val[order]
            # Merge duplicate indices by summing their values.
            if idx.size > 1 and np.any(np.diff(idx) == 0):
                unique, inverse = np.unique(idx, return_inverse=True)
                summed = np.zeros(unique.shape[0], dtype=np.float64)
                np.add.at(summed, inverse, val)
                idx, val = unique, summed
        self.indices = idx
        self.values = val
        self._size = int(size)

    @property
    def size(self) -> int:
        return self._size

    @property
    def nbytes(self) -> int:
        return int(self.indices.nbytes + self.values.nbytes)

    def to_dense(self) -> DenseVector:
        dense = np.zeros(self._size, dtype=np.float64)
        dense[self.indices] = self.values
        return DenseVector(dense)

    def to_numpy(self) -> np.ndarray:
        return self.to_dense().values

    def dot(self, weights: np.ndarray) -> float:
        if weights.shape[0] != self._size:
            raise ValueError(
                f"weight length {weights.shape[0]} != vector size {self._size}"
            )
        if not self.indices.size:
            return 0.0
        return float(np.dot(weights[self.indices], self.values))

    def norm2(self) -> float:
        return float(np.linalg.norm(self.values))

    def scale(self, factor: float) -> "SparseVector":
        return SparseVector(self.indices.copy(), self.values * factor, self._size)

    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"SparseVector(size={self._size}, nnz={self.nnz()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SparseVector)
            and self._size == other._size
            and bool(np.array_equal(self.indices, other.indices))
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:  # pragma: no cover
        return hash((self._size, self.indices.tobytes(), self.values.tobytes()))


def as_vector(value: Union[Vector, np.ndarray, Sequence[float]]) -> Vector:
    """Coerce numpy arrays / sequences into a :class:`DenseVector`."""
    if isinstance(value, Vector):
        return value
    return DenseVector(np.asarray(value, dtype=np.float64))


def densify(
    vectors: Sequence["SparseVector"], out: Union[np.ndarray, None] = None
) -> np.ndarray:
    """Densify a batch of same-size sparse vectors with one scatter.

    The row-major equivalent is ``n`` :meth:`SparseVector.to_dense` calls --
    ``n`` allocations and ``n`` scatters.  Here the whole batch lands in one
    ``(n, size)`` buffer (``out`` may supply it, e.g. pooled scratch) and a
    single fancy-indexed assignment places every stored entry.  Because
    sparse indices are unique per vector, assignment semantics match the
    per-record scatter exactly.
    """
    if not vectors:
        raise ValueError("cannot densify zero vectors")
    size = vectors[0].size
    for vector in vectors:
        if vector.size != size:
            raise ValueError("densify requires vectors of one size")
    if out is not None and out.shape[0] >= len(vectors) and out.shape[1] == size:
        matrix = out[: len(vectors)]
        matrix[:] = 0.0
    else:
        matrix = np.zeros((len(vectors), size), dtype=np.float64)
    row_index = np.repeat(
        np.arange(len(vectors)), [vector.indices.shape[0] for vector in vectors]
    )
    if row_index.size:
        matrix[row_index, np.concatenate([vector.indices for vector in vectors])] = (
            np.concatenate([vector.values for vector in vectors])
        )
    return matrix


def concat_vectors(vectors: Iterable[Vector]) -> Vector:
    """Concatenate vectors, preserving sparsity when every input is sparse.

    This is the kernel behind the ``Concat`` featurizer.  PRETZEL's optimizer
    tries hard to *remove* this operation (by pushing linear models through
    it); the black-box baselines always execute it and pay for the combined
    buffer.
    """
    vecs: List[Vector] = list(vectors)
    if not vecs:
        raise ValueError("cannot concatenate zero vectors")
    if len(vecs) == 1:
        return vecs[0]
    total = sum(v.size for v in vecs)
    if all(isinstance(v, SparseVector) for v in vecs):
        indices: List[np.ndarray] = []
        values: List[np.ndarray] = []
        offset = 0
        for vec in vecs:
            assert isinstance(vec, SparseVector)
            indices.append(vec.indices + offset)
            values.append(vec.values)
            offset += vec.size
        return SparseVector(np.concatenate(indices), np.concatenate(values), total)
    dense_parts = [v.to_numpy() for v in vecs]
    return DenseVector(np.concatenate(dense_parts))
