"""The ``fused`` backend: whole-ensemble tree traversal over flattened arrays.

The reference kernels of the ensemble families (:class:`RandomForest`,
:class:`TreeEnsembleClassifier`, :class:`TreeFeaturizer`) loop over their
member trees in Python, paying one full level-order traversal -- and its
handful of small numpy dispatches per level -- per tree.  The fused kernels
flatten every member tree's node arrays into one concatenated arena (child
indices rebased so each tree's subtree addresses its own slice) and run a
*single* level-order traversal over ``n_records x n_trees`` lanes: per tree
level, one gather + one compare + one select over the whole ensemble instead
of per tree.  The comparisons are exactly the scalar ``_leaf_of`` ones
evaluated in a different grouping, so the leaves -- and every output derived
from them -- are bit-equal; only :class:`RandomForest`'s final mean is a
float reduction (already under the oracle's relative-tolerance carve-out).

The flattened arena is cached per operator (invalidated when the operator is
refit, detected by the identity of its trees' node arrays), so steady-state
dispatch costs one dict probe.
"""

from __future__ import annotations

import weakref
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.operators.backends import register_backend, register_kernel
from repro.operators.batch import ColumnBatch, as_column_batch, batch_matrix
from repro.operators.trees import DecisionTree
from repro.operators.vectors import SparseVector

register_backend(
    "fused",
    description="whole-ensemble level-order traversal over flattened node arrays",
)


class _FlatEnsemble:
    """All member trees' node arrays concatenated into one arena."""

    __slots__ = ("feature", "threshold", "left", "right", "value", "roots", "token")

    def __init__(self, trees: List[DecisionTree], token: Tuple[int, ...]) -> None:
        offsets = []
        offset = 0
        for tree in trees:
            offsets.append(offset)
            offset += tree.n_nodes
        self.feature = np.concatenate([tree._nodes["feature"] for tree in trees])
        self.threshold = np.concatenate([tree._nodes["threshold"] for tree in trees])
        # Rebase child indices into the arena; -1 leaf markers stay -1.
        self.left = np.concatenate(
            [
                np.where(tree._nodes["left"] >= 0, tree._nodes["left"] + base, -1)
                for base, tree in zip(offsets, trees)
            ]
        )
        self.right = np.concatenate(
            [
                np.where(tree._nodes["right"] >= 0, tree._nodes["right"] + base, -1)
                for base, tree in zip(offsets, trees)
            ]
        )
        self.value = np.concatenate([tree._nodes["value"] for tree in trees])
        #: arena index of each tree's root == its cumulative node offset, so a
        #: lane's final arena index is exactly ``offset + local leaf index``.
        self.roots = np.asarray(offsets, dtype=np.int64)
        self.token = token

    def leaves(self, matrix: np.ndarray) -> np.ndarray:
        """Arena leaf indices, shape ``(n_records, n_trees)``.

        One lane per (record, tree) pair; every pass descends all still-active
        lanes one tree level with a single gather/compare/select, mirroring
        :meth:`DecisionTree._leaves_of` across the whole ensemble at once.
        """
        n_records = matrix.shape[0]
        n_trees = self.roots.shape[0]
        state = np.tile(self.roots, n_records)
        lane_rows = np.repeat(np.arange(n_records), n_trees)
        active = np.flatnonzero(self.left[state] != -1)
        while active.size:
            current = state[active]
            go_left = (
                matrix[lane_rows[active], self.feature[current]]
                <= self.threshold[current]
            )
            state[active] = np.where(go_left, self.left[current], self.right[current])
            active = active[self.left[state[active]] != -1]
        return state.reshape(n_records, n_trees)


#: flattened arenas, keyed per ensemble operator; weak keys so unregistered
#: plans do not pin their ensembles (and their arenas) in memory.
_ARENAS: "weakref.WeakKeyDictionary[Any, _FlatEnsemble]" = weakref.WeakKeyDictionary()


def _arena_of(operator: Any, trees: List[DecisionTree]) -> _FlatEnsemble:
    # The token pins the exact trained state: refitting replaces the node
    # arrays, which invalidates the cached arena.
    token = tuple(id(tree._nodes["feature"]) for tree in trees)
    arena = _ARENAS.get(operator)
    if arena is None or arena.token != token:
        arena = _FlatEnsemble(trees, token)
        _ARENAS[operator] = arena
    return arena


def _ensemble_matrix(operator: Any, values: Any) -> Tuple[Optional[np.ndarray], Any]:
    """The dense feature matrix, or None with the coerced batch for fallback."""
    batch = as_column_batch(values)
    if not batch:
        return None, batch
    return batch_matrix(batch), batch


@register_kernel("RandomForest", "fused", exact=False)
def random_forest_fused(operator: Any, values: Any) -> ColumnBatch:
    """Forest mean from one whole-ensemble traversal (one lane per record x tree)."""
    if not operator.trees:
        raise RuntimeError("RandomForest used before fit()")
    matrix, batch = _ensemble_matrix(operator, values)
    if not batch:
        return ColumnBatch.from_scalars(np.empty(0, dtype=np.float64))
    if matrix is None:
        return operator.transform_batch(batch)
    arena = _arena_of(operator, operator.trees)
    scores = arena.value[arena.leaves(matrix)]
    return ColumnBatch.from_scalars(np.mean(scores, axis=1))


@register_kernel("TreeEnsembleClassifier", "fused")
def tree_ensemble_classifier_fused(operator: Any, values: Any) -> ColumnBatch:
    """Per-class score columns from one whole-ensemble traversal (bit-equal)."""
    if not operator.trees:
        raise RuntimeError("TreeEnsembleClassifier used before fit()")
    matrix, batch = _ensemble_matrix(operator, values)
    if not batch:
        return ColumnBatch.from_rows([])
    if matrix is None:
        return operator.transform_batch(batch)
    arena = _arena_of(operator, operator.trees)
    scores = arena.value[arena.leaves(matrix)]
    return ColumnBatch.from_matrix(scores)


@register_kernel("TreeFeaturizer", "fused")
def tree_featurizer_fused(operator: Any, values: Any) -> ColumnBatch:
    """One-hot leaf encodings straight from the arena indices (bit-equal).

    The arena index of a leaf *is* ``cumulative node offset + local leaf
    index`` -- exactly the feature index the reference kernel computes per
    tree -- so the traversal output needs no per-tree rebasing at all.
    """
    if not operator.trees:
        raise RuntimeError("TreeFeaturizer used before fit()")
    matrix, batch = _ensemble_matrix(operator, values)
    if not batch:
        return ColumnBatch.from_rows([])
    if matrix is None:
        return operator.transform_batch(batch)
    arena = _arena_of(operator, operator.trees)
    leaves = arena.leaves(matrix)
    total = arena.feature.shape[0]
    ones = np.ones(leaves.shape[1], dtype=np.float64)
    return ColumnBatch.from_rows([SparseVector(row, ones, total) for row in leaves])
