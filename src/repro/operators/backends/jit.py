"""The optional ``numba`` backend: JIT-compiled ensemble traversal.

Tree traversal is branchy gather/compare work that numba compiles to a tight
per-record loop with no intermediate arrays at all -- typically ahead of even
the fused numpy arena on small batches, where the level-order passes still
pay a handful of numpy dispatches per tree level.

The backend registers unconditionally so the registry (and the oracle's
registry scan) always sees it, but it is marked unavailable when numba is not
importable: dispatch, the cost model and the batch sweep all skip it, and the
equivalence oracle skips (not fails) its cases.  Nothing in this repository
depends on numba being installed.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.operators.backends import register_backend, register_kernel
from repro.operators.backends.trees import _arena_of, _ensemble_matrix
from repro.operators.batch import ColumnBatch

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the import is the availability probe
    numba = None
    HAVE_NUMBA = False

register_backend(
    "numba",
    description="JIT-compiled whole-ensemble traversal (requires numba)",
    available=HAVE_NUMBA,
)


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _jit_leaves(matrix, feature, threshold, left, right, roots, out):
        n_records = matrix.shape[0]
        n_trees = roots.shape[0]
        for record in range(n_records):
            for position in range(n_trees):
                node = roots[position]
                while left[node] != -1:
                    if matrix[record, feature[node]] <= threshold[node]:
                        node = left[node]
                    else:
                        node = right[node]
                out[record, position] = node

    def _ensemble_leaves_jit(operator: Any, matrix: np.ndarray) -> np.ndarray:
        arena = _arena_of(operator, operator.trees)
        out = np.empty((matrix.shape[0], arena.roots.shape[0]), dtype=np.int64)
        _jit_leaves(
            np.ascontiguousarray(matrix),
            arena.feature,
            arena.threshold,
            arena.left,
            arena.right,
            arena.roots,
            out,
        )
        return arena, out

else:

    def _ensemble_leaves_jit(operator: Any, matrix: np.ndarray):
        raise RuntimeError("numba backend selected but numba is not installed")


@register_kernel("RandomForest", "numba", exact=False)
def random_forest_numba(operator: Any, values: Any) -> ColumnBatch:
    """Forest mean from the JIT traversal (same comparisons, same leaves)."""
    if not operator.trees:
        raise RuntimeError("RandomForest used before fit()")
    matrix, batch = _ensemble_matrix(operator, values)
    if not batch:
        return ColumnBatch.from_scalars(np.empty(0, dtype=np.float64))
    if matrix is None:
        return operator.transform_batch(batch)
    arena, leaves = _ensemble_leaves_jit(operator, matrix)
    return ColumnBatch.from_scalars(np.mean(arena.value[leaves], axis=1))


@register_kernel("TreeEnsembleClassifier", "numba")
def tree_ensemble_classifier_numba(operator: Any, values: Any) -> ColumnBatch:
    """Per-class score columns from the JIT traversal (bit-equal)."""
    if not operator.trees:
        raise RuntimeError("TreeEnsembleClassifier used before fit()")
    matrix, batch = _ensemble_matrix(operator, values)
    if not batch:
        return ColumnBatch.from_rows([])
    if matrix is None:
        return operator.transform_batch(batch)
    arena, leaves = _ensemble_leaves_jit(operator, matrix)
    return ColumnBatch.from_matrix(arena.value[leaves])
