"""The ``gemm`` backend: fold per-record dot loops into one matrix product.

Two reference kernels leave throughput on the table once batches are real:

* The split-linear SA stages (:class:`PartialLinearScorer`, and the unsplit
  :class:`LinearModel` families) receive *sparse* n-gram vectors, and the
  shared :func:`~repro.operators.linear.batch_margins` kernel keeps a
  per-record Python loop of sparse dots for them.  The gemm kernel computes
  the whole batch's margins in one fused pass: every record's ``(index,
  value)`` pairs are concatenated, one gather ``weights[indices] * values``
  produces all products, and a single segmented reduction folds them into
  per-record margins -- the entire stage's margins come out of one
  vectorized sweep (literally one GEMV when the batch is dense), and the
  :class:`MarginCombiner` downstream only sums the resulting columns.
* :class:`KMeans`' reference kernel broadcasts a ``(n, k, d)`` difference
  tensor to take norms.  The gemm kernel uses the classic expansion
  ``|x - c|^2 = |x|^2 - 2 x.c + |c|^2``, replacing the 3-D broadcast with one
  ``(n, d) @ (d, k)`` GEMM.

Both kernels reorder floating-point reductions (BLAS accumulation order vs
per-record loops), so they register with ``exact=False`` -- the same
relative-tolerance carve-out the reference kernels of these families already
need against the scalar oracle.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.operators.backends import register_backend, register_kernel
from repro.operators.batch import ColumnBatch, as_column_batch
from repro.operators.vectors import SparseVector

register_backend(
    "gemm",
    description="single-matmul margins for (sparse) linear stages and KMeans distances",
)


def _dense_batch_matrix(batch: ColumnBatch) -> Optional[np.ndarray]:
    """Densify a batch into ``(n, width)``, scattering sparse rows in one pass.

    Returns None for batches that are neither dense nor uniformly sparse
    (mixed row types, ragged widths) -- callers fall back to the reference
    kernel there.
    """
    matrix = batch.dense_matrix()
    if matrix is not None:
        return matrix
    rows = batch.rows
    if not rows:
        return None
    width = -1
    for row in rows:
        if not isinstance(row, SparseVector):
            return None
        if width < 0:
            width = row.size
        elif row.size != width:
            return None
    if width <= 0:
        return None
    counts = np.asarray([row.indices.size for row in rows], dtype=np.int64)
    dense = np.zeros((len(rows), width), dtype=np.float64)
    if int(counts.sum()):
        lane_rows = np.repeat(np.arange(len(rows)), counts)
        dense[lane_rows, np.concatenate([row.indices for row in rows])] = (
            np.concatenate([row.values for row in rows])
        )
    return dense


def _sparse_segment_margins(
    rows: Any, weights: np.ndarray, bias: float
) -> Optional[np.ndarray]:
    """Margins for a uniformly sparse batch via one gather + segmented sum.

    Densifying a dictionary-wide n-gram batch costs more than it saves (the
    reference kernel's own observation), so the sparse fold gathers the
    touched weights for *all* records at once and reduces each record's
    segment with ``np.add.reduceat`` -- no dense intermediate at all.
    Returns None when the batch is not uniformly sparse.
    """
    width = weights.shape[0]
    for row in rows:
        if not isinstance(row, SparseVector) or row.size != width:
            return None
    counts = np.fromiter(
        (row.indices.size for row in rows), dtype=np.int64, count=len(rows)
    )
    margins = np.full(len(rows), float(bias))
    if int(counts.sum()):
        products = weights[np.concatenate([row.indices for row in rows])] * (
            np.concatenate([row.values for row in rows])
        )
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        nonzero = counts > 0
        # reduceat over the non-empty segments only: consecutive starts then
        # delimit exactly one record's products (empty rows add nothing).
        margins[nonzero] += np.add.reduceat(products, starts[nonzero])
    return margins


def _gemm_margins(
    values: Any, weights: np.ndarray, bias: float
) -> Optional[np.ndarray]:
    """All margins ``w . x + b`` in one vectorized pass, or None for reference.

    Dense batches take one GEMV; uniformly sparse batches take the segmented
    gather-reduce.  Mixed/ragged batches return None and fall back.
    """
    batch = as_column_batch(values)
    if not batch:
        return np.empty(0, dtype=np.float64)
    matrix = batch.dense_matrix()
    if matrix is not None:
        if matrix.shape[1] != weights.shape[0]:
            return None
        return matrix @ weights + bias
    return _sparse_segment_margins(batch.rows, weights, bias)


@register_kernel("PartialLinear", "gemm", exact=False)
def partial_linear_gemm(operator: Any, values: Any) -> ColumnBatch:
    """Every branch margin of the batch from one (scatter +) GEMV."""
    margins = _gemm_margins(values, operator.weights, operator.bias)
    if margins is None:
        return operator.transform_batch(values)
    return ColumnBatch.from_scalars(margins)


def _linear_model_gemm(operator: Any, values: Any) -> ColumnBatch:
    if operator.weights is None:
        raise RuntimeError(f"{operator.name} used before fit()")
    margins = _gemm_margins(values, operator.weights, operator.bias)
    if margins is None:
        return operator.transform_batch(values)
    return ColumnBatch.from_scalars(operator._link(margins))


@register_kernel("LinearRegression", "gemm", exact=False)
def linear_regression_gemm(operator: Any, values: Any) -> ColumnBatch:
    """Unsplit linear scoring over a densified batch: one GEMV + one link pass."""
    return _linear_model_gemm(operator, values)


@register_kernel("LogisticRegression", "gemm", exact=False)
def logistic_regression_gemm(operator: Any, values: Any) -> ColumnBatch:
    """Same single-GEMV path; the sigmoid link is applied once per batch."""
    return _linear_model_gemm(operator, values)


@register_kernel("PoissonRegression", "gemm", exact=False)
def poisson_regression_gemm(operator: Any, values: Any) -> ColumnBatch:
    """Same single-GEMV path; the exp link is applied once per batch."""
    return _linear_model_gemm(operator, values)


@register_kernel("KMeans", "gemm", exact=False)
def kmeans_gemm(operator: Any, values: Any) -> ColumnBatch:
    """Centroid distances via ``|x|^2 - 2 x.c + |c|^2`` -- one GEMM, no 3-D tensor."""
    if operator.centroids is None:
        raise RuntimeError("KMeans used before fit()")
    batch = as_column_batch(values)
    if not batch:
        return ColumnBatch.from_rows([])
    matrix = _dense_batch_matrix(batch)
    centroids = operator.centroids
    if matrix is None or matrix.shape[1] != centroids.shape[1]:
        return operator.transform_batch(batch)
    squared = (
        np.sum(matrix * matrix, axis=1)[:, None]
        - 2.0 * (matrix @ centroids.T)
        + np.sum(centroids * centroids, axis=1)[None, :]
    )
    # The expansion can go a hair negative where a record sits on a centroid.
    np.maximum(squared, 0.0, out=squared)
    return ColumnBatch.from_matrix(np.sqrt(squared))
