"""Pluggable kernel backends: alternative ``transform_batch`` implementations.

PR 5 made ``transform_batch(ColumnBatch) -> ColumnBatch`` the device
boundary: every operator family ships a numpy *reference* kernel that is the
correctness contract (bit-equal to the scalar ``transform``, with a tight
relative-tolerance carve-out for families whose vectorization reorders
floating-point reductions).  This package makes that boundary pluggable: a
:class:`KernelBackend` is a named set of alternative kernels, registered per
operator family, that the runtime may substitute for the reference kernel on
the batched path when a per-stage cost model (:mod:`repro.core.cost_model`)
measures it to be faster.

Contract
--------
* A kernel is a plain function ``fn(operator, values) -> ColumnBatch`` with
  exactly the semantics of ``operator.transform_batch(values)``.  Kernels
  must accept anything ``as_column_batch`` accepts and may fall back to the
  operator's own ``transform_batch`` for input shapes they do not accelerate
  (e.g. a rows-only batch that cannot be densified).
* Every registered kernel must pass the batch-vs-scalar oracle in
  ``tests/operators/test_batch_equivalence.py``.  Kernels registered with
  ``exact=True`` are held to bit-equality; ``exact=False`` marks the same
  reduction-reordering carve-out the reference kernels already use (one
  matmul instead of per-record dots sums in a different order).
* The ``"reference"`` backend is implicit: it is every operator's own
  ``transform_batch`` and is always available for every family.  Backends
  never appear on the scalar path -- ``PhysicalStage.execute`` and the
  request-response engine are untouched by construction.

Backends self-register at import time (the builtin modules are imported at
the bottom of this file); ``available`` lets a backend that needs an optional
dependency (numba) register its kernels while staying invisible to dispatch
when the dependency is absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.operators.batch import ColumnBatch

__all__ = [
    "REFERENCE_BACKEND",
    "KernelBackend",
    "KernelSpec",
    "register_backend",
    "register_kernel",
    "backend",
    "backend_names",
    "all_backend_names",
    "kernel_for",
    "backends_for_family",
    "registered_kernels",
]

#: name of the implicit backend: the operator's own ``transform_batch``.
REFERENCE_BACKEND = "reference"

#: a kernel: ``fn(operator, values) -> ColumnBatch``.
Kernel = Callable[[Any, Any], ColumnBatch]


@dataclass(frozen=True)
class KernelSpec:
    """One registered kernel: which family it serves, under which backend."""

    family: str
    backend: str
    fn: Kernel
    #: True when the kernel is bit-equal to the scalar oracle; False marks
    #: the reduction-reordering tolerance carve-out (same as the PR 5 oracle).
    exact: bool = True


@dataclass
class KernelBackend:
    """A named set of alternative kernels, keyed by operator family name."""

    name: str
    description: str = ""
    #: availability gate -- False for backends whose optional dependency is
    #: absent (their kernels stay registered but are never dispatched).
    available: bool = True
    kernels: Dict[str, KernelSpec] = field(default_factory=dict)

    def kernel(self, family: str) -> Optional[KernelSpec]:
        return self.kernels.get(family)

    def families(self) -> List[str]:
        return sorted(self.kernels)


#: the process-wide registry; insertion order is the exploration order the
#: cost model probes backends in.
_BACKENDS: Dict[str, KernelBackend] = {}


def register_backend(
    name: str, description: str = "", available: bool = True
) -> KernelBackend:
    """Create (or fetch) a named backend.  Idempotent by name."""
    if name == REFERENCE_BACKEND:
        raise ValueError("'reference' is the implicit backend; it cannot be registered")
    entry = _BACKENDS.get(name)
    if entry is None:
        entry = KernelBackend(name=name, description=description, available=available)
        _BACKENDS[name] = entry
    return entry


def register_kernel(
    family: str, backend_name: str, exact: bool = True
) -> Callable[[Kernel], Kernel]:
    """Decorator registering ``fn(operator, values)`` for an operator family."""

    def decorate(fn: Kernel) -> Kernel:
        entry = _BACKENDS.get(backend_name)
        if entry is None:
            entry = register_backend(backend_name)
        if family in entry.kernels:
            raise ValueError(
                f"backend {backend_name!r} already has a kernel for family {family!r}"
            )
        entry.kernels[family] = KernelSpec(
            family=family, backend=backend_name, fn=fn, exact=exact
        )
        return fn

    return decorate


def backend(name: str) -> Optional[KernelBackend]:
    return _BACKENDS.get(name)


def backend_names() -> List[str]:
    """Names of the *available* registered backends (reference excluded)."""
    return [name for name, entry in _BACKENDS.items() if entry.available]


def all_backend_names() -> List[str]:
    """Every registered backend name, available or not (reference excluded)."""
    return list(_BACKENDS)


def kernel_for(family: str, backend_name: str) -> Optional[KernelSpec]:
    """The kernel serving ``family`` under ``backend_name``, if registered."""
    entry = _BACKENDS.get(backend_name)
    if entry is None:
        return None
    return entry.kernels.get(family)


def backends_for_family(family: str) -> List[str]:
    """Available backend names with a kernel for ``family`` (reference first)."""
    names = [REFERENCE_BACKEND]
    for name, entry in _BACKENDS.items():
        if entry.available and family in entry.kernels:
            names.append(name)
    return names


def registered_kernels(include_unavailable: bool = True) -> List[KernelSpec]:
    """Every registered kernel spec (the oracle's registry scan walks this)."""
    specs: List[KernelSpec] = []
    for entry in _BACKENDS.values():
        if not include_unavailable and not entry.available:
            continue
        specs.extend(entry.kernels[family] for family in sorted(entry.kernels))
    return specs


# Builtin backends self-register on import.  Imported last so the registry
# API above exists when they do.
from repro.operators.backends import gemm as _gemm  # noqa: E402,F401
from repro.operators.backends import jit as _jit  # noqa: E402,F401
from repro.operators.backends import trees as _trees  # noqa: E402,F401
