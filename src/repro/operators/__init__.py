"""Shared ML operator substrate.

These operators are the compute kernels used by every runtime in this
repository: the ML.Net-like black-box baseline (:mod:`repro.mlnet`), the
Clipper-like containerized baseline (:mod:`repro.clipper`) and PRETZEL's
physical stages (:mod:`repro.core`).  They are deliberately framework-free
(numpy only) so the serving systems above differ only in *how* they organise
execution, memory and scheduling -- which is exactly what the paper studies.
"""

from repro.operators.base import (
    Annotation,
    Operator,
    OperatorKind,
    Parameter,
    ValueKind,
)
from repro.operators.batch import ColumnBatch, as_column_batch, batch_matrix
from repro.operators.vectors import (
    DenseVector,
    SparseVector,
    Vector,
    concat_vectors,
    densify,
)
from repro.operators.text import (
    CharNgramFeaturizer,
    NgramDictionary,
    Tokenizer,
    WordNgramFeaturizer,
)
from repro.operators.featurizers import (
    ColumnSelector,
    ConcatFeaturizer,
    HashingFeaturizer,
    L2Normalizer,
    MinMaxNormalizer,
    MissingValueImputer,
    OneHotEncoder,
)
from repro.operators.linear import (
    LinearRegressor,
    LogisticRegressionClassifier,
    PoissonRegressor,
)
from repro.operators.trees import (
    DecisionTree,
    RandomForest,
    TreeEnsembleClassifier,
    TreeFeaturizer,
)
from repro.operators.clustering import KMeans
from repro.operators.decomposition import PCA

__all__ = [
    "Annotation",
    "Operator",
    "OperatorKind",
    "Parameter",
    "ValueKind",
    "ColumnBatch",
    "as_column_batch",
    "batch_matrix",
    "DenseVector",
    "SparseVector",
    "Vector",
    "concat_vectors",
    "densify",
    "Tokenizer",
    "NgramDictionary",
    "CharNgramFeaturizer",
    "WordNgramFeaturizer",
    "ColumnSelector",
    "ConcatFeaturizer",
    "HashingFeaturizer",
    "L2Normalizer",
    "MinMaxNormalizer",
    "MissingValueImputer",
    "OneHotEncoder",
    "LinearRegressor",
    "LogisticRegressionClassifier",
    "PoissonRegressor",
    "DecisionTree",
    "RandomForest",
    "TreeEnsembleClassifier",
    "TreeFeaturizer",
    "KMeans",
    "PCA",
]
