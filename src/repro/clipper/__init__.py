"""Clipper-like containerized serving baseline ("ML.Net + Clipper").

Each trained pipeline runs inside its own simulated container: a private
runtime copy of the model, a fixed per-container memory overhead, and an RPC
hop between the front-end and the container on every request.  The front-end
layers the black-box optimizations Clipper provides -- prediction caching and
delayed (adaptive) batching -- on top, without any visibility into pipeline
internals.
"""

from repro.clipper.container import ContainerConfig, ModelContainer
from repro.clipper.frontend import ClipperConfig, ClipperFrontEnd

__all__ = ["ContainerConfig", "ModelContainer", "ClipperConfig", "ClipperFrontEnd"]
