"""Clipper-style front-end: routing, caching, delayed batching, replication.

This is the "external", model-agnostic optimization layer the paper contrasts
with PRETZEL's white-box techniques.  The front-end never inspects a pipeline:
it only routes serialized requests to containers, caches whole predictions,
buffers requests into batches and replicates containers of popular models.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.clipper.container import ContainerConfig, ModelContainer
from repro.mlnet.pipeline import Pipeline
from repro.net import NetworkModel

__all__ = ["ClipperConfig", "ClipperFrontEnd", "PredictionResponse"]


@dataclass
class ClipperConfig:
    """Front-end configuration.

    ``client_network`` models the external client <-> front-end hop (the
    paper's Redis front-end adds ~9 ms); ``cache_size`` bounds the prediction
    cache; ``max_batch_delay_seconds``/``max_batch_size`` drive delayed
    batching.
    """

    container: ContainerConfig = field(default_factory=ContainerConfig)
    client_network: NetworkModel = field(default_factory=lambda: NetworkModel(round_trip_seconds=0.009))
    cache_size: int = 1024
    enable_cache: bool = False
    max_batch_size: int = 8
    max_batch_delay_seconds: float = 0.001
    frontend_overhead_bytes: int = 2 * 1024 * 1024


@dataclass
class PredictionResponse:
    """What the client gets back: outputs plus a latency breakdown."""

    model: str
    outputs: List[Any]
    prediction_seconds: float
    network_seconds: float
    cache_hit: bool = False

    @property
    def end_to_end_seconds(self) -> float:
        return self.prediction_seconds + self.network_seconds


class _LruCache:
    """A small LRU cache for (model, input) -> prediction."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class ClipperFrontEnd:
    """Route prediction requests to per-model containers."""

    def __init__(self, config: Optional[ClipperConfig] = None):
        self.config = config or ClipperConfig()
        self._containers: Dict[str, List[ModelContainer]] = {}
        self._round_robin: Dict[str, int] = {}
        self._cache = _LruCache(self.config.cache_size)
        self._pending: Dict[str, List[Any]] = {}
        self.deployed_at: Dict[str, float] = {}

    # -- deployment --------------------------------------------------------

    def deploy(self, pipeline: Pipeline, replicas: int = 1) -> str:
        """Start ``replicas`` containers for the pipeline."""
        if pipeline.name in self._containers:
            raise ValueError(f"model {pipeline.name!r} already deployed")
        self._containers[pipeline.name] = [
            ModelContainer(pipeline, self.config.container, replica=index)
            for index in range(replicas)
        ]
        self._round_robin[pipeline.name] = 0
        self.deployed_at[pipeline.name] = time.perf_counter()
        return pipeline.name

    def scale(self, model_name: str, replicas: int, pipeline: Optional[Pipeline] = None) -> int:
        """Change the replica count of a deployed model (external load balancing)."""
        containers = self._containers_for(model_name)
        if replicas > len(containers):
            if pipeline is None:
                raise ValueError("scaling up requires the pipeline to start new containers")
            for index in range(len(containers), replicas):
                containers.append(ModelContainer(pipeline, self.config.container, replica=index))
        elif replicas < len(containers):
            if replicas < 1:
                raise ValueError("at least one replica must remain")
            del containers[replicas:]
        return len(containers)

    def undeploy(self, model_name: str) -> None:
        self._containers.pop(model_name, None)
        self._round_robin.pop(model_name, None)
        self.deployed_at.pop(model_name, None)

    def deployed_models(self) -> List[str]:
        return list(self._containers)

    def replica_count(self, model_name: str) -> int:
        return len(self._containers_for(model_name))

    def _containers_for(self, model_name: str) -> List[ModelContainer]:
        if model_name not in self._containers:
            raise KeyError(f"model {model_name!r} is not deployed")
        return self._containers[model_name]

    def _pick_container(self, model_name: str) -> ModelContainer:
        containers = self._containers_for(model_name)
        index = self._round_robin[model_name] % len(containers)
        self._round_robin[model_name] = index + 1
        return containers[index]

    # -- serving -----------------------------------------------------------

    def predict(self, model_name: str, records: Sequence[Any]) -> PredictionResponse:
        """Serve a request end-to-end: cache check, RPC to a container, reply."""
        records = list(records)
        cache_key: Optional[Hashable] = None
        if self.config.enable_cache and len(records) == 1:
            cache_key = (model_name, repr(records[0]))
            cached = self._cache.get(cache_key)
            if cached is not None:
                network, _req, _resp = self.config.client_network.round_trip(
                    {"model": model_name, "records": records}, {"outputs": [cached]}
                )
                return PredictionResponse(
                    model=model_name,
                    outputs=[cached],
                    prediction_seconds=0.0,
                    network_seconds=network,
                    cache_hit=True,
                )
        container = self._pick_container(model_name)
        start = time.perf_counter()
        outputs, rpc_overhead = container.predict(records)
        prediction_seconds = time.perf_counter() - start + rpc_overhead
        if cache_key is not None:
            self._cache.put(cache_key, outputs[0])
        network, _req, _resp = self.config.client_network.round_trip(
            {"model": model_name, "records": records}, {"outputs": outputs}
        )
        return PredictionResponse(
            model=model_name,
            outputs=outputs,
            prediction_seconds=prediction_seconds,
            network_seconds=network,
        )

    def predict_batched(self, model_name: str, records: Sequence[Any]) -> PredictionResponse:
        """Delayed batching: buffer requests, flush when full (or on demand)."""
        queue = self._pending.setdefault(model_name, [])
        queue.extend(records)
        if len(queue) < self.config.max_batch_size:
            # The caller is responsible for flushing after the batch delay; we
            # model the delay as part of the latency when the flush happens.
            return PredictionResponse(
                model=model_name, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        return self.flush(model_name)

    def flush(self, model_name: str) -> PredictionResponse:
        """Send any buffered requests for the model as one batch."""
        queue = self._pending.get(model_name, [])
        if not queue:
            return PredictionResponse(
                model=model_name, outputs=[], prediction_seconds=0.0, network_seconds=0.0
            )
        self._pending[model_name] = []
        response = self.predict(model_name, queue)
        response.prediction_seconds += self.config.max_batch_delay_seconds
        return response

    # -- accounting --------------------------------------------------------

    def memory_bytes(self) -> int:
        total = self.config.frontend_overhead_bytes
        for containers in self._containers.values():
            for container in containers:
                total += container.memory_bytes()
        return total

    def cache_stats(self) -> Dict[str, int]:
        return {"hits": self._cache.hits, "misses": self._cache.misses, "entries": len(self._cache)}

    def stats(self) -> Dict[str, Any]:
        return {
            "models": len(self._containers),
            "containers": sum(len(c) for c in self._containers.values()),
            "memory_bytes": self.memory_bytes(),
            "cache": self.cache_stats(),
        }
