"""Simulated model containers.

The paper deploys each ML.Net pipeline in a Docker container orchestrated by
Clipper.  Containerization buys isolation and ease of deployment but costs:

* a full private copy of the model and of the hosting runtime per container
  (no parameter sharing whatsoever),
* a fixed per-container memory overhead (container image layers, language
  runtime, RPC server), which the paper measures at roughly 2.5x for the
  small AC pipelines, and
* an RPC round trip between the front-end and the container on every request.

``ModelContainer`` reproduces these costs around the same black-box
:class:`~repro.mlnet.runtime.MLNetRuntime` used by the non-containerized
baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mlnet.pipeline import Pipeline
from repro.mlnet.runtime import MLNetRuntime, MLNetRuntimeConfig
from repro.net import NetworkModel, deserialize_message, serialize_message

__all__ = ["ContainerConfig", "ModelContainer"]


@dataclass
class ContainerConfig:
    """Per-container resource model.

    ``container_overhead_bytes`` is the fixed footprint each container adds on
    top of the model itself (base image, language runtime, RPC server); its
    default is calibrated so containerizing the small AC pipelines costs
    roughly the 2.5x memory factor the paper reports.  ``rpc`` models the
    front-end <-> container hop; it is cheaper than the external client hop
    but paid on every single request.
    """

    container_overhead_bytes: int = 448 * 1024
    runtime: MLNetRuntimeConfig = None  # type: ignore[assignment]
    rpc: NetworkModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.runtime is None:
            # The container overhead already accounts for the runtime copy.
            self.runtime = MLNetRuntimeConfig(runtime_overhead_bytes=0)
        if self.rpc is None:
            self.rpc = NetworkModel(round_trip_seconds=0.0015)


class ModelContainer:
    """One pipeline running in its own container behind an RPC endpoint."""

    def __init__(self, pipeline: Pipeline, config: Optional[ContainerConfig] = None, replica: int = 0):
        self.config = config or ContainerConfig()
        self.replica = replica
        self.model_name = pipeline.name
        self._runtime = MLNetRuntime(self.config.runtime)
        self._runtime.load(pipeline, name=pipeline.name)
        self.started_at = time.perf_counter()
        self.requests_served = 0
        self.busy_seconds = 0.0

    # -- RPC surface -------------------------------------------------------

    def handle_request(self, payload: bytes) -> Tuple[bytes, float]:
        """Process one serialized request; returns (response bytes, rpc overhead).

        Deserialization and serialization are performed for real; the wire
        latency of the hop is returned so callers can account for it.
        """
        request = deserialize_message(payload)
        records = request["records"]
        start = time.perf_counter()
        if len(records) == 1:
            outputs = [self._runtime.predict(self.model_name, records[0])]
        else:
            outputs = self._runtime.predict_batch(self.model_name, records)
        self.busy_seconds += time.perf_counter() - start
        self.requests_served += 1
        response = serialize_message({"model": self.model_name, "outputs": outputs})
        overhead = self.config.rpc.overhead_seconds(len(payload), len(response))
        return response, overhead

    def predict(self, records: Sequence[Any]) -> Tuple[List[Any], float]:
        """Convenience wrapper: serialize, dispatch, deserialize.

        Returns the predictions together with the *accounted* RPC overhead in
        seconds (not slept).
        """
        payload = serialize_message({"model": self.model_name, "records": list(records)})
        response, overhead = self.handle_request(payload)
        decoded = deserialize_message(response)
        return decoded["outputs"], overhead

    # -- accounting --------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.config.container_overhead_bytes + self._runtime.memory_bytes()

    def is_warm(self) -> bool:
        entry = self._runtime.model(self.model_name)
        return entry.initialized

    def warm_up(self, record: Any) -> None:
        """Force initialization + one prediction (used when pre-warming replicas)."""
        self._runtime.predict(self.model_name, record)

    def stats(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "replica": self.replica,
            "requests": self.requests_served,
            "busy_seconds": self.busy_seconds,
            "memory_bytes": self.memory_bytes(),
        }
